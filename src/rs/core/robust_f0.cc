#include "rs/core/robust_f0.h"

#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/fast_f0.h"
#include "rs/sketch/kmv_f0.h"
#include "rs/util/check.h"

namespace rs {

RobustF0::RobustF0(const RobustConfig& config, uint64_t seed)
    : config_(config) {
  // Input validation lives in RobustConfig::Validate (the facade's
  // TryMakeRobust rejects bad configs as Status values before reaching
  // this constructor); the RS_CHECKs below only guard direct, trusted
  // construction of the wrapper class itself.
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;

  // Base accuracy eps0 = eps/4 (the paper uses eps/20 for bookkeeping; the
  // end-to-end envelope is verified empirically — see DESIGN.md section 6).
  const double eps0 = eps / 4.0;
  KmvF0::Config kmv;
  kmv.k = static_cast<size_t>(std::ceil(6.0 / (eps0 * eps0)));

  if (config.method == Method::kSketchSwitching) {
    SketchSwitching::Config sw;
    sw.eps = eps;
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = SketchSwitching::RingSizeForEpsilon(eps);
    sw.name = "RobustF0/switching";
    switching_ = std::make_unique<SketchSwitching>(
        sw,
        [kmv](uint64_t s) { return std::make_unique<KmvF0>(kmv, s); },
        seed);
    return;
  }

  if (config.method == Method::kDifferentialPrivacy) {
    // HKMMS pool: ~sqrt(lambda) KMV copies behind the private median. The
    // flip budget is the F0 flip number at the Lemma 3.6 lambda_{eps/8}
    // granularity — the eps/2 rounder re-publishes about twice per
    // (1+eps/2) growth, so the coarser-granularity budget leaves headroom.
    const size_t lambda = config.dp.flip_budget_override != 0
                              ? config.dp.flip_budget_override
                              : F0FlipNumber(eps / 8.0, config.stream.n);
    dp_ = std::make_unique<DpRobust>(
        MakeDpRobustConfig(config, lambda, "RobustF0/dp"),
        EstimatorFactory(
            [kmv](uint64_t s) { return std::make_unique<KmvF0>(kmv, s); }),
        seed);
    return;
  }

  // Computation paths over FastF0 (Theorem 5.4).
  ComputationPaths::Config cp;
  cp.eps = eps;
  cp.delta = config.delta;
  cp.m = config.stream.m;
  // F0 in [1, n].
  cp.log_T = std::log(static_cast<double>(config.stream.n));
  cp.lambda = F0FlipNumber(eps / 10.0, config.stream.n);
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = "RobustF0/paths";
  const uint64_t n = config.stream.n;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [eps0, n](double delta, uint64_t s) {
        FastF0::Config fc;
        fc.eps = eps0;
        fc.delta = delta;
        fc.n = n;
        return std::make_unique<FastF0>(fc, s);
      },
      seed);
}

void RobustF0::Update(const rs::Update& u) {
  if (switching_ != nullptr) {
    switching_->Update(u);
  } else if (dp_ != nullptr) {
    dp_->Update(u);
  } else {
    paths_->Update(u);
  }
}

void RobustF0::UpdateBatch(const rs::Update* ups, size_t count) {
  if (switching_ != nullptr) {
    switching_->UpdateBatch(ups, count);
  } else if (dp_ != nullptr) {
    dp_->UpdateBatch(ups, count);
  } else {
    paths_->UpdateBatch(ups, count);
  }
}

double RobustF0::Estimate() const {
  if (switching_ != nullptr) return switching_->Estimate();
  if (dp_ != nullptr) return dp_->Estimate();
  return paths_->Estimate();
}

size_t RobustF0::SpaceBytes() const {
  if (switching_ != nullptr) return switching_->SpaceBytes();
  if (dp_ != nullptr) return dp_->SpaceBytes();
  return paths_->SpaceBytes();
}

std::string RobustF0::Name() const {
  if (switching_ != nullptr) return switching_->Name();
  if (dp_ != nullptr) return dp_->Name();
  return paths_->Name();
}

size_t RobustF0::output_changes() const {
  if (switching_ != nullptr) return switching_->switches();
  if (dp_ != nullptr) return dp_->output_changes();
  return paths_->output_changes();
}

bool RobustF0::exhausted() const {
  // Ring mode can never exhaust; the paths guarantee lapses once the
  // published output changed more often than the union bound budgeted for;
  // the dp guarantee lapses when the SVT gate needed a flip it could no
  // longer pay for.
  if (switching_ != nullptr) return switching_->exhausted();
  if (dp_ != nullptr) return dp_->exhausted();
  return paths_->output_changes() > paths_->lambda();
}

rs::GuaranteeStatus RobustF0::GuaranteeStatus() const {
  if (dp_ != nullptr) return dp_->GuaranteeStatus();
  rs::GuaranteeStatus status;
  status.flips_spent = output_changes();
  if (switching_ != nullptr) {
    status.flip_budget = switching_->flip_budget();
    status.copies_retired = switching_->retired();
  } else {
    status.flip_budget = paths_->lambda();
    status.copies_retired = 0;  // The single instance is never retired.
  }
  status.holds = !exhausted();
  return status;
}

}  // namespace rs
