#include "rs/core/robust_f0.h"

#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/fast_f0.h"
#include "rs/sketch/kmv_f0.h"
#include "rs/util/check.h"

namespace rs {

namespace {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
RobustConfig FromLegacy(const RobustF0::Config& c) {
  RobustConfig rc;
  rc.eps = c.eps;
  rc.delta = c.delta;
  rc.stream.n = c.n;
  rc.stream.m = c.m;
  rc.method = c.method;
  rc.theoretical_sizing = c.theoretical_sizing;
  return rc;
}

}  // namespace

RobustF0::RobustF0(const Config& config, uint64_t seed)
    : RobustF0(FromLegacy(config), seed) {}
#pragma GCC diagnostic pop

RobustF0::RobustF0(const RobustConfig& config, uint64_t seed)
    : config_(config) {
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;

  if (config.method == Method::kSketchSwitching) {
    // Base accuracy eps0 = eps/4 (the paper uses eps/20 for bookkeeping; the
    // end-to-end envelope is verified empirically — see DESIGN.md section 6).
    const double eps0 = eps / 4.0;
    KmvF0::Config kmv;
    kmv.k = static_cast<size_t>(std::ceil(6.0 / (eps0 * eps0)));
    SketchSwitching::Config sw;
    sw.eps = eps;
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = SketchSwitching::RingSizeForEpsilon(eps);
    sw.name = "RobustF0/switching";
    switching_ = std::make_unique<SketchSwitching>(
        sw,
        [kmv](uint64_t s) { return std::make_unique<KmvF0>(kmv, s); },
        seed);
    return;
  }

  // Computation paths over FastF0 (Theorem 5.4).
  ComputationPaths::Config cp;
  cp.eps = eps;
  cp.delta = config.delta;
  cp.m = config.stream.m;
  // F0 in [1, n].
  cp.log_T = std::log(static_cast<double>(config.stream.n));
  cp.lambda = F0FlipNumber(eps / 10.0, config.stream.n);
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = "RobustF0/paths";
  const double eps0 = eps / 4.0;
  const uint64_t n = config.stream.n;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [eps0, n](double delta, uint64_t s) {
        FastF0::Config fc;
        fc.eps = eps0;
        fc.delta = delta;
        fc.n = n;
        return std::make_unique<FastF0>(fc, s);
      },
      seed);
}

void RobustF0::Update(const rs::Update& u) {
  if (switching_ != nullptr) {
    switching_->Update(u);
  } else {
    paths_->Update(u);
  }
}

void RobustF0::UpdateBatch(const rs::Update* ups, size_t count) {
  if (switching_ != nullptr) {
    switching_->UpdateBatch(ups, count);
  } else {
    paths_->UpdateBatch(ups, count);
  }
}

double RobustF0::Estimate() const {
  return switching_ != nullptr ? switching_->Estimate() : paths_->Estimate();
}

size_t RobustF0::SpaceBytes() const {
  return switching_ != nullptr ? switching_->SpaceBytes()
                               : paths_->SpaceBytes();
}

std::string RobustF0::Name() const {
  return switching_ != nullptr ? switching_->Name() : paths_->Name();
}

size_t RobustF0::output_changes() const {
  return switching_ != nullptr ? switching_->switches()
                               : paths_->output_changes();
}

bool RobustF0::exhausted() const {
  // Ring mode can never exhaust; the paths guarantee lapses once the
  // published output changed more often than the union bound budgeted for.
  return switching_ != nullptr ? switching_->exhausted()
                               : paths_->output_changes() > paths_->lambda();
}

rs::GuaranteeStatus RobustF0::GuaranteeStatus() const {
  rs::GuaranteeStatus status;
  status.flips_spent = output_changes();
  if (switching_ != nullptr) {
    status.flip_budget = switching_->flip_budget();
    status.copies_retired = switching_->retired();
  } else {
    status.flip_budget = paths_->lambda();
    status.copies_retired = 0;  // The single instance is never retired.
  }
  status.holds = !exhausted();
  return status;
}

}  // namespace rs
