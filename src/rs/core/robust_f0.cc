#include "rs/core/robust_f0.h"

#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/fast_f0.h"
#include "rs/sketch/kmv_f0.h"
#include "rs/util/check.h"

namespace rs {

RobustF0::RobustF0(const Config& config, uint64_t seed) : config_(config) {
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;

  if (config.method == Method::kSketchSwitching) {
    // Base accuracy eps0 = eps/4 (the paper uses eps/20 for bookkeeping; the
    // end-to-end envelope is verified empirically — see DESIGN.md section 6).
    const double eps0 = eps / 4.0;
    KmvF0::Config kmv;
    kmv.k = static_cast<size_t>(std::ceil(6.0 / (eps0 * eps0)));
    SketchSwitching::Config sw;
    sw.eps = eps;
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = SketchSwitching::RingSizeForEpsilon(eps);
    sw.name = "RobustF0/switching";
    switching_ = std::make_unique<SketchSwitching>(
        sw,
        [kmv](uint64_t s) { return std::make_unique<KmvF0>(kmv, s); },
        seed);
    return;
  }

  // Computation paths over FastF0 (Theorem 5.4).
  ComputationPaths::Config cp;
  cp.eps = eps;
  cp.delta = config.delta;
  cp.m = config.m;
  cp.log_T = std::log(static_cast<double>(config.n));  // F0 in [1, n].
  cp.lambda = F0FlipNumber(eps / 10.0, config.n);
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = "RobustF0/paths";
  const double eps0 = eps / 4.0;
  const uint64_t n = config.n;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [eps0, n](double delta, uint64_t s) {
        FastF0::Config fc;
        fc.eps = eps0;
        fc.delta = delta;
        fc.n = n;
        return std::make_unique<FastF0>(fc, s);
      },
      seed);
}

void RobustF0::Update(const rs::Update& u) {
  if (switching_ != nullptr) {
    switching_->Update(u);
  } else {
    paths_->Update(u);
  }
}

double RobustF0::Estimate() const {
  return switching_ != nullptr ? switching_->Estimate() : paths_->Estimate();
}

size_t RobustF0::SpaceBytes() const {
  return switching_ != nullptr ? switching_->SpaceBytes()
                               : paths_->SpaceBytes();
}

std::string RobustF0::Name() const {
  return switching_ != nullptr ? switching_->Name() : paths_->Name();
}

size_t RobustF0::output_changes() const {
  return switching_ != nullptr ? switching_->switches()
                               : paths_->output_changes();
}

}  // namespace rs
