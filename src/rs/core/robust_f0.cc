#include "rs/core/robust_f0.h"

#include <algorithm>
#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/hash/tabulation.h"
#include "rs/sketch/fast_f0.h"
#include "rs/sketch/kmv_f0.h"
#include "rs/util/check.h"

namespace rs {

namespace {

// Per-copy footprint of a KMV base at capacity — mirrors the accounting in
// KmvF0::SpaceBytes() with heap and membership set full at k entries.
size_t KmvProvisionedBytes(size_t k) {
  const size_t node = sizeof(uint64_t) + 2 * sizeof(void*);
  return k * sizeof(uint64_t) + k * node + TabulationHash::SpaceBytes();
}

}  // namespace

F0Sizing F0SizingFor(const RobustConfig& config) {
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;
  F0Sizing s;
  // Base accuracy eps0 = eps/4 (the paper uses eps/20 for bookkeeping; the
  // end-to-end envelope is verified empirically — see DESIGN.md section 6).
  s.base_eps = eps / 4.0;

  if (config.method == Method::kSketchSwitching) {
    s.kmv_k = static_cast<size_t>(std::ceil(6.0 / (s.base_eps * s.base_eps)));
    s.copies = SketchSwitching::RingSizeForEpsilon(eps);
    s.flip_budget = 0;  // Theorem 4.1 restart ring: unbounded.
    // The wrapper object itself is part of the live accounting
    // (SketchSwitching::SpaceBytes starts at sizeof(*this)), so the
    // closed form must charge it too or under-predict by exactly that.
    s.provisioned_bytes =
        s.copies * KmvProvisionedBytes(s.kmv_k) + sizeof(SketchSwitching);
    return s;
  }

  if (config.method == Method::kDifferentialPrivacy) {
    // HKMMS pool: ~sqrt(lambda) KMV copies behind the private median. The
    // flip budget is the F0 flip number at the Lemma 3.6 lambda_{eps/8}
    // granularity — the eps/2 rounder re-publishes about twice per
    // (1+eps/2) growth, so the coarser-granularity budget leaves headroom.
    s.kmv_k = static_cast<size_t>(std::ceil(6.0 / (s.base_eps * s.base_eps)));
    s.flip_budget = config.dp.flip_budget_override != 0
                        ? config.dp.flip_budget_override
                        : F0FlipNumber(eps / 8.0, config.stream.n);
    s.copies = config.dp.copies_override != 0
                   ? config.dp.copies_override
                   : DpCopyCount(config.dp.epsilon, config.delta,
                                 s.flip_budget);
    s.provisioned_bytes =
        s.copies * KmvProvisionedBytes(s.kmv_k) + sizeof(DpRobust);
    return s;
  }

  // Computation paths: a single FastF0 instance; its list layout grows with
  // occupancy, so there is no closed-form capacity to provision.
  s.copies = 1;
  s.flip_budget = F0FlipNumber(eps / 10.0, config.stream.n);
  return s;
}

RobustF0::RobustF0(const RobustConfig& config, uint64_t seed)
    : config_(config), sizing_(F0SizingFor(config)) {
  // Input validation lives in RobustConfig::Validate (the facade's
  // TryMakeRobust rejects bad configs as Status values before reaching
  // this constructor); the RS_CHECKs below only guard direct, trusted
  // construction of the wrapper class itself. All geometry comes from
  // F0SizingFor — the single source the planner cost models also read.
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;
  const double eps0 = sizing_.base_eps;
  KmvF0::Config kmv;
  kmv.k = sizing_.kmv_k;

  if (config.method == Method::kSketchSwitching) {
    SketchSwitching::Config sw;
    sw.eps = eps;
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = sizing_.copies;
    sw.name = "RobustF0/switching";
    switching_ = std::make_unique<SketchSwitching>(
        sw,
        [kmv](uint64_t s) { return std::make_unique<KmvF0>(kmv, s); },
        seed);
    return;
  }

  if (config.method == Method::kDifferentialPrivacy) {
    dp_ = std::make_unique<DpRobust>(
        MakeDpRobustConfig(config, sizing_.flip_budget, "RobustF0/dp"),
        EstimatorFactory(
            [kmv](uint64_t s) { return std::make_unique<KmvF0>(kmv, s); }),
        seed);
    return;
  }

  // Computation paths over FastF0 (Theorem 5.4).
  ComputationPaths::Config cp;
  cp.eps = eps;
  cp.delta = config.delta;
  cp.m = config.stream.m;
  // F0 in [1, n].
  cp.log_T = std::log(static_cast<double>(config.stream.n));
  cp.lambda = sizing_.flip_budget;
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = "RobustF0/paths";
  const uint64_t n = config.stream.n;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [eps0, n](double delta, uint64_t s) {
        FastF0::Config fc;
        fc.eps = eps0;
        fc.delta = delta;
        fc.n = n;
        return std::make_unique<FastF0>(fc, s);
      },
      seed);
}

void RobustF0::Update(const rs::Update& u) {
  if (switching_ != nullptr) {
    switching_->Update(u);
  } else if (dp_ != nullptr) {
    dp_->Update(u);
  } else {
    paths_->Update(u);
  }
}

void RobustF0::UpdateBatch(const rs::Update* ups, size_t count) {
  if (switching_ != nullptr) {
    switching_->UpdateBatch(ups, count);
  } else if (dp_ != nullptr) {
    dp_->UpdateBatch(ups, count);
  } else {
    paths_->UpdateBatch(ups, count);
  }
}

double RobustF0::Estimate() const {
  if (switching_ != nullptr) return switching_->Estimate();
  if (dp_ != nullptr) return dp_->Estimate();
  return paths_->Estimate();
}

size_t RobustF0::SpaceBytes() const {
  if (switching_ != nullptr) return switching_->SpaceBytes();
  if (dp_ != nullptr) return dp_->SpaceBytes();
  return paths_->SpaceBytes();
}

std::string RobustF0::Name() const {
  if (switching_ != nullptr) return switching_->Name();
  if (dp_ != nullptr) return dp_->Name();
  return paths_->Name();
}

size_t RobustF0::output_changes() const {
  if (switching_ != nullptr) return switching_->switches();
  if (dp_ != nullptr) return dp_->output_changes();
  return paths_->output_changes();
}

bool RobustF0::exhausted() const {
  // Ring mode can never exhaust; the paths guarantee lapses once the
  // published output changed more often than the union bound budgeted for;
  // the dp guarantee lapses when the SVT gate needed a flip it could no
  // longer pay for.
  if (switching_ != nullptr) return switching_->exhausted();
  if (dp_ != nullptr) return dp_->exhausted();
  return paths_->output_changes() > paths_->lambda();
}

size_t RobustF0::MemoryFootprintBytes() const {
  // A freshly built pool under-reports SpaceBytes() (KMV heaps fill over
  // the stream); the provisioned capacity is what a memory budget must
  // admit. max() keeps the contract "never less than the live footprint"
  // even for accounting the closed form does not cover.
  const size_t live = SpaceBytes();
  return sizing_.provisioned_bytes != 0
             ? std::max(sizing_.provisioned_bytes, live)
             : live;
}

rs::GuaranteeStatus RobustF0::GuaranteeStatus() const {
  if (dp_ != nullptr) return dp_->GuaranteeStatus();
  rs::GuaranteeStatus status;
  status.flips_spent = output_changes();
  if (switching_ != nullptr) {
    status.flip_budget = switching_->flip_budget();
    status.copies_retired = switching_->retired();
  } else {
    status.flip_budget = paths_->lambda();
    status.copies_retired = 0;  // The single instance is never retired.
  }
  status.holds = !exhausted();
  return status;
}

}  // namespace rs
