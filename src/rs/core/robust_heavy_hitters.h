// robust_heavy_hitters.h — adversarially robust L2 heavy hitters.
//
// Wraps: p-stable F2 sketches (the robust norm tracker) plus a ring of
// CountSketch instances (the point-query side).
// Technique: sketch switching on the norm; the rounded norm's output
// changes define epochs, and at each epoch boundary one CountSketch is
// queried once, frozen as the epoch's snapshot, and restarted on the
// suffix (Theorem 6.5).
// Parameters: `eps` — heavy-hitter threshold scale (tau = eps * ||f||_2;
// point queries are 2eps-correct within an epoch); `delta` — adversarial
// failure probability; the flip-number budget of the L2 norm (Corollary
// 3.5 with p = 2) sizes both the norm ring and the CountSketch ring at
// Theta(eps^-1 log eps^-1).

#ifndef RS_CORE_ROBUST_HEAVY_HITTERS_H_
#define RS_CORE_ROBUST_HEAVY_HITTERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rs/core/robust.h"
#include "rs/core/sketch_switching.h"
#include "rs/sketch/countsketch.h"
#include "rs/sketch/estimator.h"

namespace rs {

// Adversarially robust L2 heavy hitters / point queries (Theorem 6.5).
//
// Construction, following the proof:
//  * A robust L2-norm tracker R_t: sketch switching (with suffix restarts)
//    over p-stable F2 sketches, publishing an eps/2-rounded norm. Its output
//    changes partition the stream into epochs t_1 < t_2 < ... — by
//    Proposition 6.3, a point-query vector frozen at t_i stays 2eps-correct
//    until t_{i+1}.
//  * A ring of T' = Theta(eps^-1 log eps^-1) CountSketch instances. At each
//    epoch boundary the least-recently-restarted instance is queried once,
//    its state snapshotted as the frozen estimate f-hat used throughout the
//    epoch, and the instance is restarted on the stream suffix. Each
//    instance thus reveals its randomness exactly once, and the missed
//    prefix is an O(eps) fraction of the current L2 mass (the Theorem 4.1
//    argument, inequality (1) in the paper).
//
// The adversary only ever sees (a) the rounded norm timeline and (b) frozen
// snapshots; live CountSketch state is never exposed.
class RobustHeavyHitters : public PointQueryEstimator,
                           public RobustEstimator {
 public:
  RobustHeavyHitters(const RobustConfig& config, uint64_t seed);

  void Update(const rs::Update& u) override;
  // Batched: the norm tracker and the CountSketch ring consume the whole
  // batch, then the epoch-boundary check runs once at the batch boundary
  // (the rounded norm is sticky between flips, so this is the granularity
  // a batch-streaming caller observes anyway).
  void UpdateBatch(const rs::Update* ups, size_t count) override;

  // Robust estimate of ||f||_2 (the published, rounded norm R_t).
  double Estimate() const override;

  // Frozen-snapshot point query (2eps-correct within the current epoch).
  double PointQuery(uint64_t item) const override;

  // Items with frozen estimate >= threshold (absolute).
  std::vector<uint64_t> HeavyHitters(double threshold) const override;

  // The L2-guarantee report (Definition 6.1): threshold (3/4) eps R_t.
  std::vector<uint64_t> HeavyHitterSet() const;

  size_t SpaceBytes() const override;
  std::string Name() const override { return "RobustHeavyHitters"; }

  // RobustEstimator telemetry: both rings restart on retire (Theorem 4.1
  // discipline), so the construction never exhausts.
  size_t output_changes() const override { return epochs_; }
  bool exhausted() const override { return false; }
  rs::GuaranteeStatus GuaranteeStatus() const override;

  size_t epochs() const { return epochs_; }

 private:
  void AdvanceEpochIfNormMoved();
  void AdvanceEpoch();

  RobustConfig config_;
  std::unique_ptr<SketchSwitching> l2_tracker_;
  double last_published_norm_ = 0.0;
  std::vector<std::unique_ptr<CountSketch>> ring_;
  size_t next_ = 0;
  std::unique_ptr<CountSketch> snapshot_;  // Frozen f-hat for this epoch.
  size_t epochs_ = 0;
  uint64_t seed_;
  uint64_t spawn_count_ = 0;
  CountSketch::Config cs_config_;
};

}  // namespace rs

#endif  // RS_CORE_ROBUST_HEAVY_HITTERS_H_
