#include "rs/core/robust_entropy.h"

#include <algorithm>
#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/entropy_sketch.h"
#include "rs/util/check.h"

namespace rs {

RobustEntropy::RobustEntropy(const RobustConfig& config, uint64_t seed)
    : config_(config),
      theoretical_lambda_(EntropyFlipNumber(config.eps, config.stream.n,
                                            config.stream.m,
                                            config.stream.max_frequency)) {
  // Input validation lives in RobustConfig::Validate (the facade's
  // TryMakeRobust rejects bad configs as Status values before reaching
  // this constructor); the RS_CHECKs below only guard direct, trusted
  // construction of the wrapper class itself.
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  EntropySketch::Config es;
  // Base additive accuracy eps/4 on H == multiplicative eps/4-ish on 2^H.
  es.eps = config.eps / 4.0;
  es.random_oracle_model = config.entropy.random_oracle_model;

  SketchSwitching::Config sw;
  sw.eps = config.eps;
  sw.mode = SketchSwitching::PoolMode::kPool;  // Entropy is not monotone.
  sw.copies = std::min(theoretical_lambda_, config.entropy.pool_cap);
  sw.copies = std::max<size_t>(sw.copies, 2);
  sw.initial_output = 1.0;  // 2^{H(empty)} = 2^0.
  sw.name = "RobustEntropy";
  switching_ = std::make_unique<SketchSwitching>(
      sw,
      [es](uint64_t s) { return std::make_unique<EntropySketch>(es, s); },
      seed);
}

void RobustEntropy::Update(const rs::Update& u) { switching_->Update(u); }

void RobustEntropy::UpdateBatch(const rs::Update* ups, size_t count) {
  switching_->UpdateBatch(ups, count);
}

double RobustEntropy::Estimate() const { return switching_->Estimate(); }

double RobustEntropy::EntropyBits() const {
  const double g = Estimate();
  return g <= 1.0 ? 0.0 : std::log2(g);
}

size_t RobustEntropy::SpaceBytes() const { return switching_->SpaceBytes(); }

rs::GuaranteeStatus RobustEntropy::GuaranteeStatus() const {
  rs::GuaranteeStatus status;
  status.flips_spent = switching_->switches();
  status.flip_budget = switching_->flip_budget();
  status.copies_retired = switching_->retired();
  status.holds = !switching_->exhausted();
  return status;
}

}  // namespace rs
