#ifndef RS_CORE_CRYPTO_ROBUST_F0_H_
#define RS_CORE_CRYPTO_ROBUST_F0_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rs/hash/feistel.h"
#include "rs/sketch/estimator.h"
#include "rs/sketch/tracking.h"

namespace rs {

// Optimal-space distinct elements against computationally bounded
// adversaries (Section 10, Theorem 10.1 / Theorem 1.3).
//
// Construction: feed Pi(x) instead of x into a duplicate-insensitive F0
// tracking algorithm, where Pi is a keyed pseudorandom permutation (here a
// ChaCha-keyed Feistel network; the paper suggests AES). Because
//  (a) the inner sketch's state provably never changes on re-inserted
//      items, and
//  (b) a poly-time adversary cannot distinguish Pi(x) from fresh random
//      identities,
// every adaptive adversary is equivalent to the oblivious adversary that
// inserts 1, 2, 3, ... — on which the inner *tracking* algorithm is correct
// at every prefix. No flip-number blow-up is paid: space matches the static
// algorithm plus the PRF key (c log n bits).
//
// The inner sketch is a median of `copies` KMV trackers (duplicate
// insensitivity is preserved under medians of duplicate-insensitive
// copies). In the random-oracle accounting of the first half of the
// theorem, the key would be free; we always charge it.
class CryptoRobustF0 : public Estimator {
 public:
  struct Config {
    double eps = 0.1;
    size_t copies = 3;  // Median copies (success probability boosting).
    // 256-bit PRP key is derived from key_seed; in production supply a real
    // key through rs::ChaChaPrf directly.
    uint64_t key_seed = 0xC0FFEE;
  };

  CryptoRobustF0(const Config& config, uint64_t seed);

  void Update(const rs::Update& u) override;
  double Estimate() const override;
  size_t SpaceBytes() const override;
  std::string Name() const override { return "CryptoRobustF0"; }

  const FeistelPrp& prp() const { return prp_; }

 private:
  FeistelPrp prp_;
  std::unique_ptr<TrackingBooster> inner_;
};

}  // namespace rs

#endif  // RS_CORE_CRYPTO_ROBUST_F0_H_
