#include "rs/core/sketch_switching.h"

#include <cmath>

#include "rs/core/rounding.h"
#include "rs/util/check.h"
#include "rs/util/rng.h"

namespace rs {

size_t SketchSwitching::RingSizeForEpsilon(double eps, double growth_factor) {
  RS_CHECK(eps > 0.0 && eps < 1.0);
  RS_CHECK(growth_factor > 1.0);
  const double r = std::log(growth_factor / eps) / std::log1p(eps / 2.0);
  return std::max<size_t>(2, static_cast<size_t>(std::ceil(r)));
}

SketchSwitching::SketchSwitching(const Config& config,
                                 EstimatorFactory factory, uint64_t seed)
    : config_(config),
      factory_(std::move(factory)),
      seed_(seed),
      published_(config.initial_output) {
  RS_CHECK(config_.eps > 0.0 && config_.eps < 1.0);
  RS_CHECK(config_.copies >= 2);
  instances_.reserve(config_.copies);
  for (size_t i = 0; i < config_.copies; ++i) {
    instances_.push_back(factory_(SplitMix64(seed_ + ++spawn_count_)));
  }
}

void SketchSwitching::Retire() {
  if (config_.mode == PoolMode::kRing) {
    // Theorem 4.1: restart the retired copy with fresh randomness on the
    // remaining suffix of the stream, and move to the next copy in the ring.
    instances_[active_] = factory_(SplitMix64(seed_ + ++spawn_count_));
    active_ = (active_ + 1) % instances_.size();
    ++retired_;
    return;
  }
  // Plain pool (Lemma 3.6): advance; flag exhaustion at the end (the last
  // copy keeps answering and is not counted as retired — it is still live,
  // just with its guarantee lapsed).
  if (active_ + 1 < instances_.size()) {
    ++active_;
    ++retired_;
  } else {
    exhausted_ = true;
  }
}

void SketchSwitching::Update(const rs::Update& u) {
  // Every instance processes every update (Algorithm 1, line 6).
  for (auto& inst : instances_) inst->Update(u);
  GateAndPublish();
}

void SketchSwitching::UpdateBatch(const rs::Update* ups, size_t count) {
  if (count == 0) return;
  for (auto& inst : instances_) inst->UpdateBatch(ups, count);
  GateAndPublish();
}

void SketchSwitching::GateAndPublish() {
  const double y = instances_[active_]->Estimate();
  // Gate (Algorithm 1, line 8): keep the published output while it is a
  // (1 +- eps/2)-approximation of the active instance's estimate.
  const double half = config_.eps / 2.0;
  const double lo = y >= 0.0 ? (1.0 - half) * y : (1.0 + half) * y;
  const double hi = y >= 0.0 ? (1.0 + half) * y : (1.0 - half) * y;
  if (published_ >= lo && published_ <= hi) return;

  // Publish the rounded estimate of the active copy, then retire it — its
  // output (and hence part of its randomness) has now been revealed.
  published_ = RoundToPowerOf1PlusEps(y, half);
  ++switches_;
  Retire();
}

double SketchSwitching::Estimate() const { return published_; }

size_t SketchSwitching::SpaceBytes() const {
  size_t total = sizeof(*this);
  for (const auto& inst : instances_) total += inst->SpaceBytes();
  return total;
}

}  // namespace rs
