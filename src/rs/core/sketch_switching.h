#ifndef RS_CORE_SKETCH_SWITCHING_H_
#define RS_CORE_SKETCH_SWITCHING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rs/sketch/estimator.h"

namespace rs {

// Sketch switching (Algorithm 1, Lemma 3.6) — the paper's first generic
// robustification framework.
//
// The wrapper maintains `copies` independent instances of a static
// (eps0, delta0)-strong-tracking estimator and publishes a sticky,
// eps/2-rounded output g~. While g~ stays within a (1 +- eps/2) factor of
// the *active* instance's estimate, nothing changes and no fresh randomness
// is revealed to the adversary. When the gate fails, the published value is
// re-rounded from the active instance, the instance is retired (its
// randomness is now "spent": the adversary may correlate with it), and the
// next instance becomes active.
//
// Two pool disciplines:
//  * kPool (plain Lemma 3.6): `copies` = flip number lambda; if the pool is
//    exhausted the wrapper keeps answering from the last copy and raises
//    exhausted(). Required for non-monotone targets such as entropy.
//  * kRing (Theorem 4.1 optimization): copies are cycled modularly and every
//    retired copy is immediately restarted with fresh randomness on the
//    stream suffix. By the time a copy is reused the tracked (monotone)
//    quantity has grown by (1+eps/2)^{copies} >= growth_factor, so the
//    missed prefix is a <= eps/growth-ish fraction of the current value and
//    only Theta(eps^-1 log eps^-1) copies are ever needed.
//
// The wrapper is agnostic to which quantity g the base estimator tracks
// (F0, Fp, 2^H, ...); the caller sizes `copies` from the appropriate flip
// number (rs/core/flip_number.h) and chooses the discipline.
class SketchSwitching : public Estimator {
 public:
  enum class PoolMode {
    kPool,  // Fixed pool of `copies` instances (Lemma 3.6).
    kRing,  // Modular cycling with suffix restarts (Theorem 4.1).
  };

  struct Config {
    double eps = 0.1;          // Published output accuracy target.
    size_t copies = 16;        // Pool/ring size.
    PoolMode mode = PoolMode::kRing;
    double initial_output = 0.0;  // g(zero vector).
    std::string name = "SketchSwitching";
  };

  // Ring size sufficient for the Theorem 4.1 argument: smallest R with
  // (1 + eps/2)^R >= growth_factor / eps (default growth 100, as in the
  // paper's proof, giving a missed-prefix fraction <= eps/100).
  static size_t RingSizeForEpsilon(double eps, double growth_factor = 100.0);

  SketchSwitching(const Config& config, EstimatorFactory factory,
                  uint64_t seed);

  void Update(const rs::Update& u) override;

  // Batched hot path: every instance consumes the whole batch, then the
  // publish/round/retire gate runs ONCE at the batch boundary instead of
  // per update. This is the paper-sanctioned amortization — the published
  // output is sticky between flips (Section 3), so a caller streaming
  // batches observes exactly the per-batch publication granularity it asked
  // for — and it hoists the active copy's Estimate() (a median for the
  // p-stable bases) out of the inner loop.
  void UpdateBatch(const rs::Update* ups, size_t count) override;

  // The published output g~ — rounded and sticky; this is all the adversary
  // ever observes.
  double Estimate() const override;

  size_t SpaceBytes() const override;
  std::string Name() const override { return config_.name; }

  // Number of times the published output changed (bounded by the flip
  // number on correct executions — Lemma 3.3).
  size_t switches() const { return switches_; }

  // Pool mode only: true when more switches occurred than copies were
  // provisioned for; the robustness guarantee no longer applies.
  bool exhausted() const { return exhausted_; }

  size_t copies() const { return instances_.size(); }
  size_t active_index() const { return active_; }
  PoolMode mode() const { return config_.mode; }

  // Copies whose randomness was revealed and that were abandoned (pool) or
  // restarted with fresh randomness (ring).
  size_t retired() const { return retired_; }

  // Provisioned flip budget: the pool size under Lemma 3.6, 0 (unbounded)
  // for the Theorem 4.1 restart ring.
  size_t flip_budget() const {
    return config_.mode == PoolMode::kPool ? instances_.size() : 0;
  }

 private:
  void Retire();
  // The Algorithm 1 gate: re-publish from the active copy and retire it if
  // the sticky output escaped the (1 +- eps/2) window.
  void GateAndPublish();

  Config config_;
  EstimatorFactory factory_;
  uint64_t seed_;
  uint64_t spawn_count_ = 0;
  std::vector<std::unique_ptr<Estimator>> instances_;
  size_t active_ = 0;
  double published_;
  size_t switches_ = 0;
  size_t retired_ = 0;
  bool exhausted_ = false;
};

}  // namespace rs

#endif  // RS_CORE_SKETCH_SWITCHING_H_
