// robust_bounded_deletion.h — robust Fp on alpha-bounded-deletion streams.
//
// Wraps: a single linear p-stable sketch (deletions handled natively).
// Technique: computation paths (Lemma 3.8), made affordable because Lemma
// 8.2 bounds the flip number of ||.||_p on alpha-bounded-deletion streams.
// Parameters: `eps` — multiplicative accuracy of the published Fp moment;
// `delta` — adversarial failure probability; `alpha` — the
// bounded-deletion promise (current mass stays >= (1/alpha) of the insert
// mass: at most a (1 - 1/alpha) fraction of what was inserted is ever
// deleted); the flip-number budget
// is BoundedDeletionFlipNumber (Lemma 8.2, O(p alpha eps^-p log n)) and
// sets the union-bound exponent, exposed via lambda().

#ifndef RS_CORE_ROBUST_BOUNDED_DELETION_H_
#define RS_CORE_ROBUST_BOUNDED_DELETION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rs/core/computation_paths.h"
#include "rs/core/robust.h"
#include "rs/sketch/estimator.h"
#include "rs/stream/update.h"

namespace rs {

// Adversarially robust Fp estimation for alpha-bounded-deletion streams,
// p in [1, 2] (Theorem 8.3 / Theorem 1.11).
//
// Lemma 8.2 bounds the flip number of ||.||_p on alpha-bounded-deletion
// streams by O(p alpha eps^-p log n): every (1 +- eps) move of the norm
// forces the (monotone) insert-mass moment to grow by (1 + eps^p/alpha).
// With a bounded flip number, the computation-paths reduction applies to
// the linear (turnstile-capable) p-stable sketch, exactly as in the proof.
class RobustBoundedDeletionFp : public RobustEstimator {
 public:
  RobustBoundedDeletionFp(const RobustConfig& config, uint64_t seed);

  void Update(const rs::Update& u) override;
  void UpdateBatch(const rs::Update* ups, size_t count) override;
  double Estimate() const override;  // Fp moment.
  size_t SpaceBytes() const override;
  std::string Name() const override { return "RobustBoundedDeletionFp"; }

  // RobustEstimator telemetry: the Lemma 3.8 guarantee lapses once the
  // output changed more often than the Lemma 8.2 lambda budget.
  size_t output_changes() const override { return paths_->output_changes(); }
  bool exhausted() const override { return output_changes() > lambda_; }
  rs::GuaranteeStatus GuaranteeStatus() const override;

  size_t lambda() const { return lambda_; }

 private:
  RobustConfig config_;
  size_t lambda_;
  std::unique_ptr<ComputationPaths> paths_;
};

}  // namespace rs

#endif  // RS_CORE_ROBUST_BOUNDED_DELETION_H_
