#include "rs/core/crypto_robust_f0.h"

#include <cmath>

#include "rs/sketch/kmv_f0.h"
#include "rs/util/check.h"

namespace rs {

CryptoRobustF0::CryptoRobustF0(const Config& config, uint64_t seed)
    : prp_(config.key_seed) {
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  KmvF0::Config kmv;
  kmv.k = static_cast<size_t>(std::ceil(8.0 / (config.eps * config.eps)));
  inner_ = std::make_unique<TrackingBooster>(
      [kmv](uint64_t s) { return std::make_unique<KmvF0>(kmv, s); },
      std::max<size_t>(1, config.copies | 1), seed);
}

void CryptoRobustF0::Update(const rs::Update& u) {
  if (u.delta <= 0) return;  // Insertion-only problem.
  // The permuted identity is what the inner sketch sees; Pi is injective,
  // so distinct counts are preserved exactly.
  inner_->Update({prp_.Permute(u.item), u.delta});
}

double CryptoRobustF0::Estimate() const { return inner_->Estimate(); }

size_t CryptoRobustF0::SpaceBytes() const {
  return inner_->SpaceBytes() + FeistelPrp::SpaceBytes() + sizeof(*this);
}

}  // namespace rs
