// robust_cascaded.h — robust cascaded-norm ||A||_(p,k) estimation for
// insertion-only matrix streams.
//
// Wraps: median-boosted row-sampling cascaded sketches
// (rs/sketch/cascaded.h behind a TrackingBooster).
// Technique: sketch switching — the Theorem 4.1 restart ring when the
// mixed norm obeys the triangle inequality (p, k >= 1), the plain Lemma
// 3.6 pool otherwise or when force_pool is set.
// Parameters: `eps` — multiplicative accuracy of the published norm;
// per-copy confidence is driven by `booster_copies` medians rather than an
// explicit delta; the flip-number budget is MonotoneFlipNumberFromLog
// (Proposition 3.4, O(eps^-1 log T) with T the polynomial norm bound) and
// sizes the pool, capped at `pool_cap`.

#ifndef RS_CORE_ROBUST_CASCADED_H_
#define RS_CORE_ROBUST_CASCADED_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rs/core/robust.h"
#include "rs/core/sketch_switching.h"
#include "rs/sketch/cascaded.h"
#include "rs/sketch/estimator.h"

namespace rs {

// Adversarially robust cascaded-norm estimation — the Proposition 3.4
// application the paper spells out right after Corollary 3.5: the
// (p,k)-moment of an insertion-only matrix stream is monotone and
// polynomially bounded, so its flip number is O(eps^-1 log T) and the
// black-box reductions of Section 3 apply verbatim "using e.g. the cascaded
// algorithms of [24]" as the static substrate (ours is the row-sampling
// estimator in rs/sketch/cascaded.h; see the substitution note there).
//
// Pool discipline: for p, k >= 1 the cascaded norm is a genuine mixed norm
// L_p(L_k) and satisfies the triangle inequality, so the Theorem 4.1
// suffix-restart argument carries over unchanged (a restarted copy estimates
// ||A^(t) - A^(j)||_(p,k), and once the norm has grown by 100/eps the missed
// prefix is an eps/100 fraction) — the wrapper uses the Theta(eps^-1 log
// eps^-1) ring. For p < 1 or k < 1 the triangle inequality fails and the
// wrapper falls back to the plain Lemma 3.6 pool sized by the flip number.
class RobustCascadedNorm : public RobustEstimator {
 public:
  RobustCascadedNorm(const RobustConfig& config, uint64_t seed);

  void Update(const rs::Update& u) override;
  void UpdateBatch(const rs::Update* ups, size_t count) override;

  // Published robust estimate of the norm ||A||_(p,k).
  double Estimate() const override;

  // Published estimate of the (p,k)-moment ||A||_(p,k)^p.
  double MomentEstimate() const;

  size_t SpaceBytes() const override;
  std::string Name() const override { return "RobustCascadedNorm"; }

  // RobustEstimator telemetry: pool mode can drain; the ring never does.
  size_t output_changes() const override { return switching_->switches(); }
  bool exhausted() const override { return switching_->exhausted(); }
  rs::GuaranteeStatus GuaranteeStatus() const override;

  bool ring_mode() const { return ring_mode_; }

  // The Proposition 3.4 flip number of the published norm for this
  // configuration (rs::CascadedNormFlipNumber).
  size_t flip_number() const { return flip_number_; }

 private:
  RobustConfig config_;
  bool ring_mode_;
  size_t flip_number_;
  std::unique_ptr<SketchSwitching> switching_;
};

}  // namespace rs

#endif  // RS_CORE_ROBUST_CASCADED_H_
