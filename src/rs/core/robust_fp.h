// robust_fp.h — adversarially robust Fp-moment estimation (all p > 0).
//
// Wraps: p-stable sketches for 0 < p <= 2, the HighpFp sampling estimator
// for p > 2.
// Technique: sketch switching (restart ring, Theorem 4.1), computation
// paths (Theorems 4.2-4.4, including the promised-flip-number turnstile
// variant of Theorem 4.3), or the HKMMS differential-privacy pool
// (rs/dp/, p <= 2 only — the p-stable base).
// Parameters: `eps` — multiplicative accuracy of the published Fp moment;
// `delta` — adversarial failure probability for the whole run; the
// flip-number budget comes from FpFlipNumber(eps, n, M, p) (Corollary 3.5)
// unless `lambda_override` supplies the promised turnstile bound.

#ifndef RS_CORE_ROBUST_FP_H_
#define RS_CORE_ROBUST_FP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rs/core/computation_paths.h"
#include "rs/core/robust.h"
#include "rs/core/sketch_switching.h"
#include "rs/dp/dp_robust.h"
#include "rs/sketch/estimator.h"
#include "rs/stream/update.h"

namespace rs {

// First-class sizing for every RobustFp construction — the formulas the
// constructor derives its geometry from, queryable without building
// anything (the rs::planner cost models price candidate configs through
// this; the constructor consumes the same struct, so the two cannot
// drift). `config` must be Validate(Task::kFp)-clean; `config.method` and
// `config.fp.p` select the construction exactly as the constructor does —
// in particular p > 2 falls through to the HighpFp paths construction
// regardless of the requested method, and kImportanceSampling reports the
// single sampling head.
struct FpSizing {
  double base_eps = 0.0;   // eps0 of the p-stable / HighpFp base (eps/4).
  size_t base_k = 0;       // p-stable counters per copy (0: no closed form).
  size_t copies = 1;       // Ring / dp pool copies; 1 for paths & sampling.
  size_t flip_budget = 0;  // 0 = unbounded (ring, sampling); dp/paths lambda.
  size_t sample_size = 0;  // kImportanceSampling: PpsReservoir slots.
  // Provisioned footprint (copies x fixed counter arrays + tabulation
  // tables) — what MemoryFootprintBytes() reports. 0 when the base has no
  // closed-form capacity (paths' delta0-sized base, HighpFp, the sampling
  // reservoir); read the live SpaceBytes() instead.
  size_t provisioned_bytes = 0;
};
FpSizing FpSizingFor(const RobustConfig& config);

// Adversarially robust Fp-moment estimation, Section 4. Covers five
// constructions behind one interface:
//
//  * kSketchSwitching, 0 < p <= 2 (Theorem 4.1): ring of p-stable sketches
//    with suffix restarts, Theta(eps^-1 log eps^-1) copies.
//  * kComputationPaths, 0 < p <= 2 (Theorem 4.2, the small-delta regime):
//    a single p-stable sketch sized for the Lemma 3.8 delta0 (its space
//    carries the log(1/delta0) factor multiplicatively, exactly as [27]).
//  * kComputationPaths with `lambda_override` (Theorem 4.3): turnstile
//    streams promised to have Fp flip number <= lambda. The p-stable sketch
//    is linear, so deletions are handled natively.
//  * kComputationPaths, p > 2 (Theorem 4.4): wraps the insertion-only
//    sampling estimator HighpFp instead.
//  * kDifferentialPrivacy, 0 < p <= 2 (HKMMS, arXiv:2004.05975):
//    ~sqrt(lambda) p-stable copies behind a sparse-vector-gated private
//    median; `fp.lambda_override` matches the budget to a promised
//    turnstile flip number, exactly as in the paths method.
//
// Estimate() returns Fp = ||f||_p^p; NormEstimate() returns ||f||_p.
class RobustFp : public RobustEstimator {
 public:
  using Method = rs::Method;

  RobustFp(const RobustConfig& config, uint64_t seed);

  void Update(const rs::Update& u) override;
  void UpdateBatch(const rs::Update* ups, size_t count) override;
  double Estimate() const override;   // Fp moment.
  double NormEstimate() const;        // ||f||_p.
  size_t SpaceBytes() const override;
  std::string Name() const override;

  // RobustEstimator telemetry. Ring mode never exhausts; the paths method
  // lapses once the output changed more often than the budgeted lambda;
  // the dp method lapses when the SVT budget runs dry mid-flip.
  size_t output_changes() const override;
  bool exhausted() const override;
  rs::GuaranteeStatus GuaranteeStatus() const override;

  // Provisioned capacity from FpSizingFor (switching/dp over the fixed
  // p-stable counter arrays); live SpaceBytes() for paths/HighpFp.
  size_t MemoryFootprintBytes() const override;

  const RobustConfig& config() const { return config_; }

 private:
  RobustConfig config_;
  FpSizing sizing_;
  std::unique_ptr<SketchSwitching> switching_;
  std::unique_ptr<ComputationPaths> paths_;
  std::unique_ptr<DpRobust> dp_;
};

}  // namespace rs

#endif  // RS_CORE_ROBUST_FP_H_
