// robust_fp.h — adversarially robust Fp-moment estimation (all p > 0).
//
// Wraps: p-stable sketches for 0 < p <= 2, the HighpFp sampling estimator
// for p > 2.
// Technique: sketch switching (restart ring, Theorem 4.1) or computation
// paths (Theorems 4.2-4.4), including the promised-flip-number turnstile
// variant of Theorem 4.3.
// Parameters: `eps` — multiplicative accuracy of the published Fp moment;
// `delta` — adversarial failure probability for the whole run; the
// flip-number budget comes from FpFlipNumber(eps, n, M, p) (Corollary 3.5)
// unless `lambda_override` supplies the promised turnstile bound.

#ifndef RS_CORE_ROBUST_FP_H_
#define RS_CORE_ROBUST_FP_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rs/core/computation_paths.h"
#include "rs/core/robust.h"
#include "rs/core/sketch_switching.h"
#include "rs/sketch/estimator.h"
#include "rs/stream/update.h"

namespace rs {

// Adversarially robust Fp-moment estimation, Section 4. Covers four of the
// paper's constructions behind one interface:
//
//  * kSketchSwitching, 0 < p <= 2 (Theorem 4.1): ring of p-stable sketches
//    with suffix restarts, Theta(eps^-1 log eps^-1) copies.
//  * kComputationPaths, 0 < p <= 2 (Theorem 4.2, the small-delta regime):
//    a single p-stable sketch sized for the Lemma 3.8 delta0 (its space
//    carries the log(1/delta0) factor multiplicatively, exactly as [27]).
//  * kComputationPaths with `lambda_override` (Theorem 4.3): turnstile
//    streams promised to have Fp flip number <= lambda. The p-stable sketch
//    is linear, so deletions are handled natively.
//  * kComputationPaths, p > 2 (Theorem 4.4): wraps the insertion-only
//    sampling estimator HighpFp instead.
//
// Estimate() returns Fp = ||f||_p^p; NormEstimate() returns ||f||_p.
class RobustFp : public RobustEstimator {
 public:
  using Method = rs::Method;

  // Deprecated legacy config — use RobustConfig (and rs::MakeRobust) for
  // new code; this shim is kept for one PR. The stream-global bounds n, m,
  // M now live in the embedded StreamParams rather than per-task copies.
  struct [[deprecated("use rs::RobustConfig + rs::MakeRobust (see rs/core/robust.h)")]] Config {
    double p = 1.0;
    double eps = 0.1;
    double delta = 0.05;
    // n, m, max_frequency (M) — defaults match the pre-StreamParams fields
    // of this legacy struct (M = 2^20, not StreamParams' 2^32), so callers
    // that never set M keep their original flip budget and sketch sizing.
    StreamParams stream{.n = 1 << 20, .m = 1 << 20,
                        .max_frequency = uint64_t{1} << 20};
    Method method = Method::kSketchSwitching;
    // Theorem 4.3: promised Fp flip number for turnstile streams (0 = use
    // the insertion-only Corollary 3.5 bound).
    size_t lambda_override = 0;
    bool theoretical_sizing = false;
    // p > 2 only: force sampling sizes of the HighpFp base (0 = theory-bound
    // defaults, which are large; benchmarks calibrate these).
    size_t highp_s1_override = 0;
    size_t highp_s2_override = 0;
  };

  RobustFp(const RobustConfig& config, uint64_t seed);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  RobustFp(const Config& config, uint64_t seed);  // Deprecated shim.
#pragma GCC diagnostic pop

  void Update(const rs::Update& u) override;
  void UpdateBatch(const rs::Update* ups, size_t count) override;
  double Estimate() const override;   // Fp moment.
  double NormEstimate() const;        // ||f||_p.
  size_t SpaceBytes() const override;
  std::string Name() const override;

  // RobustEstimator telemetry. Ring mode never exhausts; the paths method
  // lapses once the output changed more often than the budgeted lambda.
  size_t output_changes() const override;
  bool exhausted() const override;
  rs::GuaranteeStatus GuaranteeStatus() const override;

  const RobustConfig& config() const { return config_; }

 private:
  RobustConfig config_;
  std::unique_ptr<SketchSwitching> switching_;
  std::unique_ptr<ComputationPaths> paths_;
};

}  // namespace rs

#endif  // RS_CORE_ROBUST_FP_H_
