#ifndef RS_CORE_FLIP_NUMBER_H_
#define RS_CORE_FLIP_NUMBER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rs {

// Flip-number calculations (Definition 3.2). The (eps, m)-flip number
// lambda_{eps,m}(g) of a stream function g bounds how many times g can move
// by a (1+eps) factor along any admissible stream; it controls the number of
// sketch copies (sketch switching, Lemma 3.6) and the union-bound size
// (computation paths, Lemma 3.8).

// Proposition 3.4: a monotone g with g(0)=0, g > 0 implies g in [1/T, T]
// has flip number at most the number of powers of (1+eps) in [1/T, T], i.e.
// O(eps^-1 log T). `log_T` is the natural log of T.
size_t MonotoneFlipNumberFromLog(double eps, double log_T);

// Corollary 3.5 specializations for insertion-only streams over [n] with
// |f_i| <= M at all times.
//
// Fp (as the p-th moment ||f||_p^p): range [1, M^p n].
size_t FpFlipNumber(double eps, uint64_t n, uint64_t max_frequency, double p);

// F0 (distinct elements): range [1, n].
size_t F0FlipNumber(double eps, uint64_t n);

// Proposition 7.2: flip number of g = 2^H (exponential of Shannon entropy)
// in insertion-only streams. Each (1+eps) change of 2^H forces F1 to grow by
// (1+tau) with tau = Theta(eps^2 / log^2 n), giving
// lambda = O(eps^-2 log^3 n). `m` bounds the stream length (F1 <= mM).
size_t EntropyFlipNumber(double eps, uint64_t n, uint64_t m,
                         uint64_t max_frequency);

// Lemma 8.2: flip number of the Lp norm on alpha-bounded-deletion streams,
// p >= 1: each (1+eps) change of ||f||_p forces the insert-mass moment to
// grow by (1 + eps^p / alpha), giving lambda = O(p alpha eps^-p log n).
size_t BoundedDeletionFlipNumber(double eps, double alpha, double p,
                                 uint64_t n, uint64_t max_frequency);

// Proposition 3.4 applied to cascaded norms (the application the paper
// names after Corollary 3.5, citing [24]): the (p,k)-moment
// sum_i (sum_j |A_ij|^k)^{p/k} of an insertion-only matrix stream over
// rows x cols with entries bounded by M is monotone, 0 at the start, >= 1
// once non-zero, and at most rows * (cols * M^k)^{p/k}, so its flip number
// is O(eps^-1 * (log rows + (p/k) log cols + p log M)).
size_t CascadedMomentFlipNumber(double eps, uint64_t rows, uint64_t cols,
                                uint64_t max_entry, double p, double k);

// Flip number of the cascaded *norm* ||A||_(p,k) = moment^{1/p} — the
// quantity the robust wrapper publishes. Its log-range is the moment's
// divided by p, so for p < 1 the norm flips *more* often than the moment
// (the pool fallback for quasi-norms must budget for this).
size_t CascadedNormFlipNumber(double eps, uint64_t rows, uint64_t cols,
                              uint64_t max_entry, double p, double k);

// Exact (eps, m)-flip number of a concrete value sequence, by the greedy
// maximal chain of Definition 3.2. Used by tests (formula vs. brute force)
// and by the empirical flip-number benchmark (E10).
size_t EmpiricalFlipNumber(const std::vector<double>& values, double eps);

}  // namespace rs

#endif  // RS_CORE_FLIP_NUMBER_H_
