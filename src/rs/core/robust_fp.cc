#include "rs/core/robust_fp.h"

#include <algorithm>
#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/hash/tabulation.h"
#include "rs/sampling/sampling_robust.h"
#include "rs/sketch/highp_fp.h"
#include "rs/sketch/pstable_fp.h"
#include "rs/util/check.h"

namespace rs {

namespace {

// Per-copy footprint of a default-k p-stable base — mirrors
// PStableFp::SpaceBytes().
size_t PStableProvisionedBytes(size_t counters) {
  return counters * sizeof(double) + TabulationHash::SpaceBytes();
}

}  // namespace

FpSizing FpSizingFor(const RobustConfig& config) {
  RS_CHECK(config.fp.p > 0.0);
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;
  const double p = config.fp.p;
  FpSizing s;
  s.base_eps = eps / 4.0;

  if (config.method == Method::kImportanceSampling) {
    // Single PPS head; robustness rides on the influence bound, not a flip
    // budget (flip_budget = 0, like ring mode). The reservoir's realized
    // footprint depends on occupancy — no closed-form capacity here.
    s.copies = 1;
    s.flip_budget = 0;
    s.sample_size = SamplingSampleSize(config);
    return s;
  }

  if (p <= 2.0 && config.method == Method::kSketchSwitching) {
    s.base_k = PStableFp::CountersForEpsilon(s.base_eps);
    s.copies = SketchSwitching::RingSizeForEpsilon(eps);
    s.flip_budget = 0;  // Theorem 4.1 restart ring: unbounded.
    // Charge the wrapper object too: SketchSwitching::SpaceBytes starts at
    // sizeof(*this), and the p-stable base is fill-independent, so the
    // live footprint IS the provisioned one — the closed form must match.
    s.provisioned_bytes =
        s.copies * PStableProvisionedBytes(s.base_k) + sizeof(SketchSwitching);
    return s;
  }

  if (p <= 2.0 && config.method == Method::kDifferentialPrivacy) {
    // Flip budget at the Lemma 3.6 lambda_{eps/8} granularity (see
    // robust_f0.cc for why the eps/2 rounder needs the coarser budget).
    s.base_k = PStableFp::CountersForEpsilon(s.base_eps);
    s.flip_budget =
        config.dp.flip_budget_override != 0 ? config.dp.flip_budget_override
        : config.fp.lambda_override != 0
            ? config.fp.lambda_override
            : FpFlipNumber(eps / 8.0, config.stream.n,
                           config.stream.max_frequency, p);
    s.copies = config.dp.copies_override != 0
                   ? config.dp.copies_override
                   : DpCopyCount(config.dp.epsilon, config.delta,
                                 s.flip_budget);
    s.provisioned_bytes =
        s.copies * PStableProvisionedBytes(s.base_k) + sizeof(DpRobust);
    return s;
  }

  // Computation paths (p <= 2: a single delta0-sized p-stable sketch whose
  // counter count depends on the internally derived delta0; p > 2: the
  // occupancy-dependent HighpFp sampler) — no closed-form capacity.
  s.copies = 1;
  s.flip_budget = config.fp.lambda_override != 0
                      ? config.fp.lambda_override
                      : FpFlipNumber(eps / 10.0, config.stream.n,
                                     config.stream.max_frequency, p);
  return s;
}

RobustFp::RobustFp(const RobustConfig& config, uint64_t seed)
    : config_(config), sizing_(FpSizingFor(config)) {
  // Input validation lives in RobustConfig::Validate (the facade's
  // TryMakeRobust rejects bad configs as Status values before reaching
  // this constructor); the RS_CHECKs below only guard direct, trusted
  // construction of the wrapper class itself. All geometry comes from
  // FpSizingFor — the single source the planner cost models also read.
  RS_CHECK(config.fp.p > 0.0);
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;
  const double p = config.fp.p;

  if (p <= 2.0 && config.method == Method::kSketchSwitching) {
    // Theorem 4.1: ring of p-stable sketches. The ring tracks the Fp moment
    // itself, so the gate factor (1+eps/2) on Fp corresponds to
    // (1+eps/2)^{1/p} on the norm; ring sizing uses the Fp growth.
    PStableFp::Config ps;
    ps.p = p;
    ps.eps = sizing_.base_eps;
    SketchSwitching::Config sw;
    sw.eps = eps;
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = sizing_.copies;
    sw.name = "RobustFp/switching";
    switching_ = std::make_unique<SketchSwitching>(
        sw, [ps](uint64_t s) { return std::make_unique<PStableFp>(ps, s); },
        seed);
    return;
  }

  if (config.method == Method::kDifferentialPrivacy) {
    // HKMMS pool over the p-stable base (p <= 2: the linear sketch the dp
    // analysis assumes; p > 2 has no dp construction in the cited papers).
    RS_CHECK_MSG(p <= 2.0, "dp method requires p <= 2");
    PStableFp::Config ps;
    ps.p = p;
    ps.eps = sizing_.base_eps;
    dp_ = std::make_unique<DpRobust>(
        MakeDpRobustConfig(config, sizing_.flip_budget, "RobustFp/dp"),
        EstimatorFactory(
            [ps](uint64_t s) { return std::make_unique<PStableFp>(ps, s); }),
        seed);
    return;
  }

  // Computation-paths constructions (Theorems 4.2, 4.3, 4.4).
  ComputationPaths::Config cp;
  cp.eps = eps;
  cp.delta = config.delta;
  cp.m = config.stream.m;
  cp.log_T =
      p * std::log(static_cast<double>(config.stream.max_frequency)) +
      std::log(static_cast<double>(config.stream.n));
  cp.lambda = sizing_.flip_budget;
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = p > 2.0 ? "RobustFp/paths-highp" : "RobustFp/paths";
  const double eps0 = eps / 4.0;

  if (p > 2.0) {
    const RobustConfig cfg = config;
    paths_ = std::make_unique<ComputationPaths>(
        cp,
        [cfg, eps0](double delta, uint64_t s) {
          HighpFp::Config hc;
          hc.p = cfg.fp.p;
          hc.eps = eps0;
          hc.n = cfg.stream.n;
          hc.delta = delta;
          hc.s1_override = cfg.fp.highp_s1_override;
          hc.s2_override = cfg.fp.highp_s2_override;
          return std::make_unique<HighpFp>(hc, s);
        },
        seed);
    return;
  }

  const double pp = p;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [pp, eps0](double delta, uint64_t s) {
        // The p-stable sketch's failure probability enters through its
        // counter count: k = O(eps^-2 log(1/delta)) gives the median
        // estimator Chernoff-level confidence (the [27] shape).
        PStableFp::Config ps;
        ps.p = pp;
        ps.eps = eps0;
        const double logd = std::log(1.0 / std::max(delta, 1e-300));
        ps.k_override = static_cast<size_t>(
            std::ceil((4.0 + 1.5 * logd) / (eps0 * eps0)));
        return std::make_unique<PStableFp>(ps, s);
      },
      seed);
}

void RobustFp::Update(const rs::Update& u) {
  if (config_.fp.p > 2.0 || config_.fp.lambda_override == 0) {
    RS_DCHECK(u.delta != 0);
  }
  if (switching_ != nullptr) {
    switching_->Update(u);
  } else if (dp_ != nullptr) {
    dp_->Update(u);
  } else {
    paths_->Update(u);
  }
}

void RobustFp::UpdateBatch(const rs::Update* ups, size_t count) {
#ifndef NDEBUG
  if (config_.fp.p > 2.0 || config_.fp.lambda_override == 0) {
    for (size_t i = 0; i < count; ++i) RS_DCHECK(ups[i].delta != 0);
  }
#endif
  if (switching_ != nullptr) {
    switching_->UpdateBatch(ups, count);
  } else if (dp_ != nullptr) {
    dp_->UpdateBatch(ups, count);
  } else {
    paths_->UpdateBatch(ups, count);
  }
}

double RobustFp::Estimate() const {
  if (switching_ != nullptr) return switching_->Estimate();
  if (dp_ != nullptr) return dp_->Estimate();
  return paths_->Estimate();
}

double RobustFp::NormEstimate() const {
  const double fp = Estimate();
  return fp <= 0.0 ? 0.0 : std::pow(fp, 1.0 / config_.fp.p);
}

size_t RobustFp::SpaceBytes() const {
  if (switching_ != nullptr) return switching_->SpaceBytes();
  if (dp_ != nullptr) return dp_->SpaceBytes();
  return paths_->SpaceBytes();
}

std::string RobustFp::Name() const {
  if (switching_ != nullptr) return switching_->Name();
  if (dp_ != nullptr) return dp_->Name();
  return paths_->Name();
}

size_t RobustFp::output_changes() const {
  if (switching_ != nullptr) return switching_->switches();
  if (dp_ != nullptr) return dp_->output_changes();
  return paths_->output_changes();
}

bool RobustFp::exhausted() const {
  if (switching_ != nullptr) return switching_->exhausted();
  if (dp_ != nullptr) return dp_->exhausted();
  return paths_->output_changes() > paths_->lambda();
}

size_t RobustFp::MemoryFootprintBytes() const {
  // p-stable counter arrays are fixed at construction, so the provisioned
  // capacity is exact for switching/dp; paths/HighpFp fall back to the
  // live footprint.
  const size_t live = SpaceBytes();
  return sizing_.provisioned_bytes != 0
             ? std::max(sizing_.provisioned_bytes, live)
             : live;
}

rs::GuaranteeStatus RobustFp::GuaranteeStatus() const {
  if (dp_ != nullptr) return dp_->GuaranteeStatus();
  rs::GuaranteeStatus status;
  status.flips_spent = output_changes();
  if (switching_ != nullptr) {
    status.flip_budget = switching_->flip_budget();
    status.copies_retired = switching_->retired();
  } else {
    status.flip_budget = paths_->lambda();
    status.copies_retired = 0;
  }
  status.holds = !exhausted();
  return status;
}

}  // namespace rs
