#include "rs/core/robust_fp.h"

#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/highp_fp.h"
#include "rs/sketch/pstable_fp.h"
#include "rs/util/check.h"

namespace rs {

RobustFp::RobustFp(const Config& config, uint64_t seed) : config_(config) {
  RS_CHECK(config.p > 0.0);
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;
  const double p = config.p;

  if (p <= 2.0 && config.method == Method::kSketchSwitching) {
    // Theorem 4.1: ring of p-stable sketches. The ring tracks the Fp moment
    // itself, so the gate factor (1+eps/2) on Fp corresponds to
    // (1+eps/2)^{1/p} on the norm; ring sizing uses the Fp growth.
    const double eps0 = eps / 4.0;
    PStableFp::Config ps;
    ps.p = p;
    ps.eps = eps0;
    SketchSwitching::Config sw;
    sw.eps = eps;
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = SketchSwitching::RingSizeForEpsilon(eps);
    sw.name = "RobustFp/switching";
    switching_ = std::make_unique<SketchSwitching>(
        sw, [ps](uint64_t s) { return std::make_unique<PStableFp>(ps, s); },
        seed);
    return;
  }

  // Computation-paths constructions (Theorems 4.2, 4.3, 4.4).
  ComputationPaths::Config cp;
  cp.eps = eps;
  cp.delta = config.delta;
  cp.m = config.m;
  cp.log_T = p * std::log(static_cast<double>(config.max_frequency)) +
             std::log(static_cast<double>(config.n));
  cp.lambda = config.lambda_override != 0
                  ? config.lambda_override
                  : FpFlipNumber(eps / 10.0, config.n, config.max_frequency,
                                 p);
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = p > 2.0 ? "RobustFp/paths-highp" : "RobustFp/paths";
  const double eps0 = eps / 4.0;

  if (p > 2.0) {
    const Config cfg = config;
    paths_ = std::make_unique<ComputationPaths>(
        cp,
        [cfg, eps0](double delta, uint64_t s) {
          HighpFp::Config hc;
          hc.p = cfg.p;
          hc.eps = eps0;
          hc.n = cfg.n;
          hc.delta = delta;
          hc.s1_override = cfg.highp_s1_override;
          hc.s2_override = cfg.highp_s2_override;
          return std::make_unique<HighpFp>(hc, s);
        },
        seed);
    return;
  }

  const double pp = p;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [pp, eps0](double delta, uint64_t s) {
        // The p-stable sketch's failure probability enters through its
        // counter count: k = O(eps^-2 log(1/delta)) gives the median
        // estimator Chernoff-level confidence (the [27] shape).
        PStableFp::Config ps;
        ps.p = pp;
        ps.eps = eps0;
        const double logd = std::log(1.0 / std::max(delta, 1e-300));
        ps.k_override = static_cast<size_t>(
            std::ceil((4.0 + 1.5 * logd) / (eps0 * eps0)));
        return std::make_unique<PStableFp>(ps, s);
      },
      seed);
}

void RobustFp::Update(const rs::Update& u) {
  if (config_.p > 2.0 || config_.lambda_override == 0) {
    RS_DCHECK(u.delta != 0);
  }
  if (switching_ != nullptr) {
    switching_->Update(u);
  } else {
    paths_->Update(u);
  }
}

double RobustFp::Estimate() const {
  return switching_ != nullptr ? switching_->Estimate() : paths_->Estimate();
}

double RobustFp::NormEstimate() const {
  const double fp = Estimate();
  return fp <= 0.0 ? 0.0 : std::pow(fp, 1.0 / config_.p);
}

size_t RobustFp::SpaceBytes() const {
  return switching_ != nullptr ? switching_->SpaceBytes()
                               : paths_->SpaceBytes();
}

std::string RobustFp::Name() const {
  return switching_ != nullptr ? switching_->Name() : paths_->Name();
}

size_t RobustFp::output_changes() const {
  return switching_ != nullptr ? switching_->switches()
                               : paths_->output_changes();
}

}  // namespace rs
