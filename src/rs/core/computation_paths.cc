#include "rs/core/computation_paths.h"

#include <algorithm>
#include <cmath>

#include "rs/util/check.h"

namespace rs {

namespace {

// ln C(m, k) via lgamma.
double LogBinomial(uint64_t m, uint64_t k) {
  if (k > m) return 0.0;
  return std::lgamma(static_cast<double>(m) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(m - k) + 1.0);
}

}  // namespace

double ComputationPaths::RequiredLogDelta0(const Config& config) {
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  RS_CHECK(config.delta > 0.0 && config.delta < 1.0);
  // |S| = C(m, lambda) * (c * eps^-1 * ln T)^lambda possible rounded output
  // sequences; delta0 = delta / |S|.
  const double grid_values =
      std::max(2.0, 4.0 * std::max(1.0, config.log_T) / config.eps);
  const double log_paths =
      LogBinomial(config.m, config.lambda) +
      static_cast<double>(config.lambda) * std::log(grid_values);
  return std::log(config.delta) - log_paths;
}

double ComputationPaths::PracticalLogDelta0(const Config& config) {
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  RS_CHECK(config.delta > 0.0 && config.delta < 1.0);
  const double grid_values =
      std::max(2.0, 4.0 * std::max(1.0, config.log_T) / config.eps);
  return std::log(config.delta) -
         std::log(static_cast<double>(config.m) + 1.0) -
         std::log(static_cast<double>(config.lambda) + 1.0) -
         std::log(grid_values);
}

ComputationPaths::ComputationPaths(const Config& config,
                                   const DeltaEstimatorFactory& factory,
                                   uint64_t seed)
    : config_(config),
      log_delta0_(config.theoretical_sizing ? RequiredLogDelta0(config)
                                            : PracticalLogDelta0(config)),
      rounder_(config.eps / 2.0) {
  // The factory interface takes delta as a double; convert from log-space,
  // clamping at the smallest positive double. Base algorithms that care
  // about extreme deltas should size from -log delta, which is what our
  // sketches do internally (their space depends on log(1/delta)).
  const double delta0 = std::max(std::exp(log_delta0_), 1e-300);
  base_ = factory(delta0, seed);
  RS_CHECK(base_ != nullptr);
}

void ComputationPaths::Update(const rs::Update& u) {
  base_->Update(u);
  rounder_.Feed(base_->Estimate());
}

void ComputationPaths::UpdateBatch(const rs::Update* ups, size_t count) {
  if (count == 0) return;
  base_->UpdateBatch(ups, count);
  rounder_.Feed(base_->Estimate());
}

double ComputationPaths::Estimate() const { return rounder_.current(); }

size_t ComputationPaths::SpaceBytes() const {
  return base_->SpaceBytes() + sizeof(*this);
}

}  // namespace rs
