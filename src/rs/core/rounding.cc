#include "rs/core/rounding.h"

#include <cmath>

#include "rs/util/check.h"

namespace rs {

double RoundToPowerOf1PlusEps(double x, double eps) {
  RS_CHECK(eps > 0.0);
  if (x == 0.0) return 0.0;
  const double ax = std::fabs(x);
  // ell minimizing max(y/x, x/y) over y = (1+eps)^ell is the nearest integer
  // to log_{1+eps}(|x|).
  const double ell = std::round(std::log(ax) / std::log1p(eps));
  const double y = std::pow(1.0 + eps, ell);
  return x > 0.0 ? y : -y;
}

EpsilonRounder::EpsilonRounder(double eps) : eps_(eps) {
  RS_CHECK(eps > 0.0 && eps < 1.0);
}

double EpsilonRounder::Feed(double raw) {
  if (!started_) {
    current_ = RoundToPowerOf1PlusEps(raw, eps_);
    started_ = true;
    // The initial value counts as a change only if it is nonzero (the
    // published output moved away from the a-priori g(0) = 0).
    if (current_ != 0.0) ++changes_;
    return current_;
  }
  // Keep the current output while (1-eps) raw <= current <= (1+eps) raw.
  // (For negative raw values the interval is mirrored.)
  const double lo = raw >= 0.0 ? (1.0 - eps_) * raw : (1.0 + eps_) * raw;
  const double hi = raw >= 0.0 ? (1.0 + eps_) * raw : (1.0 - eps_) * raw;
  if (current_ >= lo && current_ <= hi) return current_;
  const double next = RoundToPowerOf1PlusEps(raw, eps_);
  if (next != current_) {
    current_ = next;
    ++changes_;
  }
  return current_;
}

}  // namespace rs
