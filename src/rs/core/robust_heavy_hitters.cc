#include "rs/core/robust_heavy_hitters.h"

#include <cmath>

#include "rs/sketch/pstable_fp.h"
#include "rs/util/check.h"
#include "rs/util/rng.h"

namespace rs {

namespace {

// Adapter publishing the L2 *norm* (not the squared moment) from a 2-stable
// sketch, which is the quantity the epoch structure of Theorem 6.5 rounds.
class L2NormEstimator : public Estimator {
 public:
  L2NormEstimator(const PStableFp::Config& config, uint64_t seed)
      : sketch_(config, seed) {}

  void Update(const rs::Update& u) override { sketch_.Update(u); }
  void UpdateBatch(const rs::Update* ups, size_t count) override {
    sketch_.UpdateBatch(ups, count);
  }
  double Estimate() const override { return sketch_.NormEstimate(); }
  size_t SpaceBytes() const override { return sketch_.SpaceBytes(); }
  std::string Name() const override { return "L2NormEstimator"; }

 private:
  PStableFp sketch_;
};

}  // namespace

RobustHeavyHitters::RobustHeavyHitters(const RobustConfig& config,
                                       uint64_t seed)
    : config_(config), seed_(seed) {
  // Input validation lives in RobustConfig::Validate (the facade's
  // TryMakeRobust rejects bad configs as Status values before reaching
  // this constructor); the RS_CHECKs below only guard direct, trusted
  // construction of the wrapper class itself.
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);
  const double eps = config.eps;

  // Robust L2 tracker at grain eps (its rounded output changes define the
  // epochs). The paper's proof tracks the norm at eps/100 and lands at
  // 4eps-correctness before a final rescale; we spend the constant-factor
  // budget differently — grain eps with an eps/3 base — which keeps every
  // step of the Proposition 6.3 argument within the same 4eps envelope while
  // costing 4x fewer counters on the per-update hot path (the wrapper's
  // update work is ring_copies x k, the Theta(eps^-3) the theorem states).
  PStableFp::Config ps;
  ps.p = 2.0;
  ps.eps = eps / 3.0;
  SketchSwitching::Config sw;
  sw.eps = eps;
  sw.mode = SketchSwitching::PoolMode::kRing;
  sw.copies = SketchSwitching::RingSizeForEpsilon(eps);
  sw.name = "RobustHH/l2";
  l2_tracker_ = std::make_unique<SketchSwitching>(
      sw,
      [ps](uint64_t s) { return std::make_unique<L2NormEstimator>(ps, s); },
      SplitMix64(seed ^ 0x4848'1111ULL));

  // CountSketch ring: point-query accuracy eps/4 so that epoch staleness
  // (Proposition 6.3) and the missed restart prefix stay within the overall
  // budget. T' = Theta(eps^-1 log eps^-1) copies.
  cs_config_.eps = eps / 4.0;
  cs_config_.delta = config.delta;
  cs_config_.heap_size = std::max<size_t>(
      64, static_cast<size_t>(std::ceil(8.0 / (eps * eps))));
  const size_t ring_size = SketchSwitching::RingSizeForEpsilon(eps);
  ring_.reserve(ring_size);
  for (size_t i = 0; i < ring_size; ++i) {
    ring_.push_back(std::make_unique<CountSketch>(
        cs_config_, SplitMix64(seed_ + ++spawn_count_)));
  }
}

void RobustHeavyHitters::AdvanceEpoch() {
  // Freeze the least-recently-restarted instance as this epoch's published
  // point-query vector, then restart it on the stream suffix.
  snapshot_ = std::make_unique<CountSketch>(*ring_[next_]);
  ring_[next_] = std::make_unique<CountSketch>(
      cs_config_, SplitMix64(seed_ + ++spawn_count_));
  next_ = (next_ + 1) % ring_.size();
  ++epochs_;
}

void RobustHeavyHitters::AdvanceEpochIfNormMoved() {
  const double published = l2_tracker_->Estimate();
  if (published != last_published_norm_) {
    last_published_norm_ = published;
    AdvanceEpoch();
  }
}

void RobustHeavyHitters::Update(const rs::Update& u) {
  l2_tracker_->Update(u);
  for (auto& cs : ring_) cs->Update(u);
  AdvanceEpochIfNormMoved();
}

void RobustHeavyHitters::UpdateBatch(const rs::Update* ups, size_t count) {
  if (count == 0) return;
  l2_tracker_->UpdateBatch(ups, count);
  for (auto& cs : ring_) cs->UpdateBatch(ups, count);
  AdvanceEpochIfNormMoved();
}

double RobustHeavyHitters::Estimate() const { return last_published_norm_; }

double RobustHeavyHitters::PointQuery(uint64_t item) const {
  return snapshot_ == nullptr ? 0.0 : snapshot_->PointQuery(item);
}

std::vector<uint64_t> RobustHeavyHitters::HeavyHitters(
    double threshold) const {
  if (snapshot_ == nullptr) return {};
  return snapshot_->HeavyHitters(threshold);
}

std::vector<uint64_t> RobustHeavyHitters::HeavyHitterSet() const {
  return HeavyHitters(0.75 * config_.eps * last_published_norm_);
}

size_t RobustHeavyHitters::SpaceBytes() const {
  size_t total = l2_tracker_->SpaceBytes() + sizeof(*this);
  for (const auto& cs : ring_) total += cs->SpaceBytes();
  if (snapshot_ != nullptr) total += snapshot_->SpaceBytes();
  return total;
}

rs::GuaranteeStatus RobustHeavyHitters::GuaranteeStatus() const {
  rs::GuaranteeStatus status;
  status.flips_spent = epochs_;
  status.flip_budget = 0;  // Both rings restart on retire: unbounded.
  // Each epoch retires (freezes + restarts) one CountSketch on top of the
  // norm tracker's own retirements.
  status.copies_retired = l2_tracker_->retired() + epochs_;
  status.holds = true;
  return status;
}

}  // namespace rs
