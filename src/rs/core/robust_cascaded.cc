#include "rs/core/robust_cascaded.h"

#include <algorithm>
#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/tracking.h"
#include "rs/util/check.h"

namespace rs {

namespace {

// Publishes the norm ||A||_(p,k) (not the moment): the switching gate and
// the suffix-restart triangle argument both operate on the norm scale,
// exactly as RobustFp does for Lp.
class CascadedNormAdapter : public Estimator {
 public:
  CascadedNormAdapter(const CascadedRowSample::Config& config, uint64_t seed)
      : sketch_(config, seed) {}

  void Update(const rs::Update& u) override { sketch_.Update(u); }
  double Estimate() const override { return sketch_.NormEstimate(); }
  size_t SpaceBytes() const override { return sketch_.SpaceBytes(); }
  std::string Name() const override { return "CascadedNormAdapter"; }

 private:
  CascadedRowSample sketch_;
};

}  // namespace

RobustCascadedNorm::RobustCascadedNorm(const RobustConfig& config,
                                       uint64_t seed)
    : config_(config),
      ring_mode_(config.cascaded.p >= 1.0 && config.cascaded.k >= 1.0 &&
                 !config.cascaded.force_pool),
      flip_number_(CascadedNormFlipNumber(
          config.eps, config.cascaded.shape.rows, config.cascaded.shape.cols,
          config.stream.max_frequency, config.cascaded.p,
          config.cascaded.k)) {
  // Input validation lives in RobustConfig::Validate (the facade's
  // TryMakeRobust rejects bad configs as Status values before reaching
  // this constructor); the RS_CHECKs below only guard direct, trusted
  // construction of the wrapper class itself.
  RS_CHECK(config_.eps > 0.0 && config_.eps < 1.0);

  CascadedRowSample::Config base;
  base.p = config_.cascaded.p;
  base.k = config_.cascaded.k;
  base.shape = config_.cascaded.shape;
  base.rate = config_.cascaded.rate;

  SketchSwitching::Config sw;
  sw.eps = config_.eps;
  sw.name = "RobustCascadedNorm";
  if (ring_mode_) {
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = SketchSwitching::RingSizeForEpsilon(config_.eps);
  } else {
    sw.mode = SketchSwitching::PoolMode::kPool;
    sw.copies = std::max<size_t>(
        2, std::min(flip_number_, config_.cascaded.pool_cap));
  }
  const size_t boosters = std::max<size_t>(1, config_.cascaded.booster_copies);
  switching_ = std::make_unique<SketchSwitching>(
      sw,
      [base, boosters](uint64_t s) -> std::unique_ptr<Estimator> {
        if (boosters == 1) {
          return std::make_unique<CascadedNormAdapter>(base, s);
        }
        return std::make_unique<TrackingBooster>(
            [base](uint64_t inner_seed) {
              return std::make_unique<CascadedNormAdapter>(base, inner_seed);
            },
            boosters, s);
      },
      seed);
}

void RobustCascadedNorm::Update(const rs::Update& u) {
  switching_->Update(u);
}

void RobustCascadedNorm::UpdateBatch(const rs::Update* ups, size_t count) {
  switching_->UpdateBatch(ups, count);
}

double RobustCascadedNorm::Estimate() const { return switching_->Estimate(); }

double RobustCascadedNorm::MomentEstimate() const {
  return std::pow(Estimate(), config_.cascaded.p);
}

size_t RobustCascadedNorm::SpaceBytes() const {
  return switching_->SpaceBytes() + sizeof(*this);
}

rs::GuaranteeStatus RobustCascadedNorm::GuaranteeStatus() const {
  rs::GuaranteeStatus status;
  status.flips_spent = switching_->switches();
  status.flip_budget = switching_->flip_budget();
  status.copies_retired = switching_->retired();
  status.holds = !switching_->exhausted();
  return status;
}

}  // namespace rs
