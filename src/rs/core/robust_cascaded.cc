#include "rs/core/robust_cascaded.h"

#include <algorithm>
#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/tracking.h"
#include "rs/util/check.h"

namespace rs {

namespace {

// Publishes the norm ||A||_(p,k) (not the moment): the switching gate and
// the suffix-restart triangle argument both operate on the norm scale,
// exactly as RobustFp does for Lp.
class CascadedNormAdapter : public Estimator {
 public:
  CascadedNormAdapter(const CascadedRowSample::Config& config, uint64_t seed)
      : sketch_(config, seed) {}

  void Update(const rs::Update& u) override { sketch_.Update(u); }
  double Estimate() const override { return sketch_.NormEstimate(); }
  size_t SpaceBytes() const override { return sketch_.SpaceBytes(); }
  std::string Name() const override { return "CascadedNormAdapter"; }

 private:
  CascadedRowSample sketch_;
};

}  // namespace

RobustCascadedNorm::RobustCascadedNorm(const Config& config, uint64_t seed)
    : config_(config),
      ring_mode_(config.p >= 1.0 && config.k >= 1.0 && !config.force_pool),
      flip_number_(CascadedNormFlipNumber(config.eps, config.shape.rows,
                                          config.shape.cols, config.max_entry,
                                          config.p, config.k)) {
  RS_CHECK(config_.eps > 0.0 && config_.eps < 1.0);

  CascadedRowSample::Config base;
  base.p = config_.p;
  base.k = config_.k;
  base.shape = config_.shape;
  base.rate = config_.rate;

  SketchSwitching::Config sw;
  sw.eps = config_.eps;
  sw.name = "RobustCascadedNorm";
  if (ring_mode_) {
    sw.mode = SketchSwitching::PoolMode::kRing;
    sw.copies = SketchSwitching::RingSizeForEpsilon(config_.eps);
  } else {
    sw.mode = SketchSwitching::PoolMode::kPool;
    sw.copies = std::max<size_t>(2, std::min(flip_number_, config_.pool_cap));
  }
  const size_t boosters = std::max<size_t>(1, config_.booster_copies);
  switching_ = std::make_unique<SketchSwitching>(
      sw,
      [base, boosters](uint64_t s) -> std::unique_ptr<Estimator> {
        if (boosters == 1) {
          return std::make_unique<CascadedNormAdapter>(base, s);
        }
        return std::make_unique<TrackingBooster>(
            [base](uint64_t inner_seed) {
              return std::make_unique<CascadedNormAdapter>(base, inner_seed);
            },
            boosters, s);
      },
      seed);
}

void RobustCascadedNorm::Update(const rs::Update& u) {
  switching_->Update(u);
}

double RobustCascadedNorm::Estimate() const { return switching_->Estimate(); }

double RobustCascadedNorm::MomentEstimate() const {
  return std::pow(Estimate(), config_.p);
}

size_t RobustCascadedNorm::SpaceBytes() const {
  return switching_->SpaceBytes() + sizeof(*this);
}

}  // namespace rs
