// robust.h — the task-based facade over the six robust estimators.
//
// The paper's central claim is that ONE framework (sketch switching,
// Lemma 3.6 / Theorem 4.1; computation paths, Lemma 3.8) robustifies MANY
// streaming problems. This header makes that claim an API: every robust
// task in the library — F0, Fp, entropy, L2 heavy hitters, bounded-deletion
// Fp, cascaded norms — is constructible through a single `RobustConfig`
// (which embeds `StreamParams` instead of re-declaring n/m/M per task) and
// a single factory `MakeRobust(Task, config, seed)`, and every constructed
// estimator speaks the same `RobustEstimator` interface: `output_changes()`,
// `exhausted()`, and `GuaranteeStatus()` — the uniform telemetry that tells
// a caller whether the Lemma 3.6 / Lemma 3.8 adversarial guarantee is still
// in force.
//
// A string-keyed registry backs `MakeRobust("f0", ...)` for CLI and bench
// drivers, and `RegisterRobustTask` lets alternative robustification
// backends be plugged in without touching call sites. The
// differential-privacy backend of Hassidim et al. (arXiv:2004.05975) with
// the difference-estimator refinement of Attias et al. (arXiv:2107.14527)
// is now built in (rs/dp/): Method::kDifferentialPrivacy on the kF0/kFp
// tasks, plus the "dp_f0"/"dp_fp"/"dp_f2_diff" registry keys.
//
// Error model (rs/util/status.h): `TryMakeRobust` is the primary entry
// point — it validates the config (`RobustConfig::Validate`) and reports
// every input-dependent failure as a `Status` naming the offending field,
// never aborting. `MakeRobust` remains as the abort-on-error convenience
// for code that constructs from trusted, hard-coded configs (tests, bench
// drivers); multi-tenant callers (rs/runtime/stream_hub.h) must use the
// Try variant.

#ifndef RS_CORE_ROBUST_H_
#define RS_CORE_ROBUST_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rs/sketch/cascaded.h"  // MatrixShape (cascaded-norm task).
#include "rs/sketch/estimator.h"
#include "rs/stream/update.h"
#include "rs/util/status.h"

namespace rs {

// The six robust estimation tasks of Sections 4-8 (plus Proposition 3.4's
// cascaded-norm application).
enum class Task {
  kF0,               // Distinct elements (Theorems 1.1/5.1, 1.2/5.4).
  kFp,               // Fp moments, all p > 0 (Theorems 4.1-4.4).
  kEntropy,          // Additive Shannon entropy (Theorem 7.3).
  kHeavyHitters,     // L2 heavy hitters / point queries (Theorem 6.5).
  kBoundedDeletion,  // Fp on alpha-bounded-deletion streams (Theorem 8.3).
  kCascaded,         // Cascaded norms ||A||_(p,k) (Proposition 3.4 appl.).
};

// Every built-in task, in a single place so the registry, the key lookup,
// and parameterized tests cannot drift from the enum.
inline constexpr Task kAllRobustTasks[] = {
    Task::kF0,           Task::kFp,
    Task::kEntropy,      Task::kHeavyHitters,
    Task::kBoundedDeletion, Task::kCascaded};

// The robustification technique. Tasks with a single paper construction
// (entropy: pool switching; heavy hitters: epoch switching; bounded
// deletion: paths; cascaded: switching) ignore this field. The
// differential-privacy method (rs/dp/) is implemented for F0 and Fp with
// p <= 2, where it sizes its copy pool by the ~sqrt(lambda) HKMMS formula
// instead of switching's lambda-flavoured ring.
enum class Method {
  kSketchSwitching,      // Algorithm 1 / Lemma 3.6 / Theorem 4.1.
  kComputationPaths,     // Lemma 3.8.
  kDifferentialPrivacy,  // HKMMS (arXiv:2004.05975) private-median pool.
  kImportanceSampling,   // BJWY-adjacent sampling (arXiv:2106.14952):
                         // robust for free while no update commands more
                         // than an influence_cap share of the sampled mass.
                         // Implemented for kFp with p in [1, 2] on
                         // insertion-only streams (rs/sampling/), plus the
                         // "is_regression" registry task.
};

// Every method, in one place so sweeps (the attacks×methods game matrix,
// parameterized tests) cannot drift from the enum.
inline constexpr Method kAllRobustMethods[] = {
    Method::kSketchSwitching, Method::kComputationPaths,
    Method::kDifferentialPrivacy, Method::kImportanceSampling};

// Stable snake_case key for a method ("switching", "paths", "dp",
// "sampling") — the method-axis labels of the game matrix, next to TaskKey
// for the task axis.
const char* MethodKey(Method method);

// Uniform guarantee telemetry (the quantity the whole framework is priced
// in): how much of the flip budget (Definition 3.2) an execution has spent,
// how many sketch copies had their randomness revealed and were retired,
// and — the bit that callers serving adversarial traffic must watch —
// whether the adversarial guarantee still holds. A drained Lemma 3.6 pool
// or a computation-paths run whose output changed more than lambda times
// silently voids the guarantee; this struct makes that loud.
struct GuaranteeStatus {
  // Published output changes so far (what the flip number bounds).
  size_t flips_spent = 0;
  // Provisioned flip budget: pool copies (Lemma 3.6) or the union-bound
  // lambda (Lemma 3.8). 0 means unbounded — the Theorem 4.1 restart ring
  // retires and restarts copies for as long as the stream parameters admit.
  size_t flip_budget = 0;
  // Copies whose randomness was revealed to the adversary and that were
  // retired (and, in ring mode, restarted on the suffix).
  size_t copies_retired = 0;
  // True while the adversarial guarantee is in force.
  bool holds = true;

  size_t FlipsRemaining() const {
    if (flip_budget == 0) return std::numeric_limits<size_t>::max();
    return flip_budget > flips_spent ? flip_budget - flips_spent : 0;
  }
};

// One configuration for every robust task. Stream-global parameters live in
// the embedded StreamParams (n, m, M, model) — they are no longer copied
// per task — and task-specific knobs live in small sub-structs that are
// simply ignored by the other tasks.
struct RobustConfig {
  // Accuracy of every published estimate: multiplicative (1 +- eps) for the
  // moment/norm tasks, additive eps bits for entropy, tau = eps ||f||_2 for
  // heavy hitters.
  double eps = 0.1;
  // Failure probability of the whole adaptive execution.
  double delta = 0.05;
  // Domain size n, stream length bound m, frequency bound M, stream model.
  StreamParams stream;
  // Robustification technique, for tasks that implement both.
  Method method = Method::kSketchSwitching;
  // Use the exact Lemma 3.8 delta0 (astronomically small) instead of the
  // calibrated practical target; computation-paths constructions only.
  bool theoretical_sizing = false;

  // kFp and kBoundedDeletion (which tracks Fp too): moment order and the
  // Theorem 4.3 / calibration overrides.
  //
  // FOOTGUN: the default moment order is p = 1. A kFp config that never
  // sets fp.p silently estimates F1 — against an F2 workload the estimate
  // is wrong by design, not by bug, and no validation can catch it because
  // p = 1 is a perfectly legal moment order. Always set fp.p explicitly;
  // the rs::planner Goal path refuses to plan a kFp goal without an
  // explicit p for exactly this reason (see README, "Auto mode").
  struct FpParams {
    double p = 1.0;
    // Theorem 4.3: promised Fp flip number for turnstile streams (0 = use
    // the insertion-only Corollary 3.5 bound).
    size_t lambda_override = 0;
    // p > 2 only: force sampling sizes of the HighpFp base (0 = theory
    // defaults, which are large; benchmarks calibrate these).
    size_t highp_s1_override = 0;
    size_t highp_s2_override = 0;
  } fp;

  // kEntropy.
  struct EntropyParams {
    size_t pool_cap = 128;  // Practical cap on the Lemma 3.6 copy pool.
    // Theorem 7.3 random-oracle accounting: hash randomness not charged to
    // SpaceBytes().
    bool random_oracle_model = false;
  } entropy;

  // kBoundedDeletion (the moment order comes from fp.p).
  struct BoundedDeletionParams {
    double alpha = 2.0;  // Bounded-deletion promise (>= 1), Definition 8.1.
  } bounded_deletion;

  // The sharded engine (rs/engine/sharded.h), reachable through the
  // "sharded" registry key: hash-partitions the update stream across
  // `shards` shard-local sub-sketches per copy and evaluates the flip gate
  // on the merged active copy every `merge_period` updates. `task` selects
  // which static sketch family the engine shards (kF0 or kFp).
  struct EngineParams {
    size_t shards = 4;
    size_t merge_period = 1024;
    size_t threads = 1;  // Workers for the batched shard fan-out.
    Task task = Task::kFp;
  } engine;

  // The differential-privacy method (rs/dp/, reachable as
  // Method::kDifferentialPrivacy on kF0/kFp and through the "dp_f0",
  // "dp_fp", "dp_f2_diff" registry keys).
  struct DpParams {
    // Privacy budget parameter. It steers the copy count (the 1/epsilon
    // factor in DpCopyCount: smaller epsilon = more copies = less rank
    // information released per aggregate) and the accountant's ledger; the
    // SVT gate's own noise scales are accuracy-calibrated constants that
    // do NOT vary with it — see the calibration caveat in ARCHITECTURE.md.
    double epsilon = 1.0;
    // Force the copy count (0 = the sqrt(lambda) DpCopyCount formula).
    size_t copies_override = 0;
    // Force the SVT flip budget (0 = the task's Corollary 3.5 flip number
    // at eps/2 granularity).
    size_t flip_budget_override = 0;
    // Evaluate the private gate every this many updates (1 = per update).
    size_t gate_period = 1;
  } dp;

  // The importance-sampling method (rs/sampling/, reachable as
  // Method::kImportanceSampling on kFp and through the "is_fp" /
  // "is_regression" registry keys). Unlike the flip-number methods there is
  // no copy pool and no flip budget; the guarantee instead rides on the
  // sampling-probability bound, whose realized state the heads report
  // through GuaranteeStatus().holds.
  struct SamplingParams {
    // Retained sample size: PpsReservoir slots (is_fp) or coreset entries
    // (is_regression). 0 = auto, max(64, ceil(16 / eps^2)).
    size_t sample_size = 0;
    // Maximum share of the total sampled mass any single update may
    // command before the guarantee is reported lapsed.
    double influence_cap = 0.25;
    // Total mass below which the sample is effectively exhaustive and the
    // influence condition is vacuous. 0 = auto, 64 * sample_size.
    double warmup_weight = 0.0;
    // is_regression only: exact leaf buffer length before a merge-and-
    // reduce step. 0 = auto, 2 * sample_size.
    size_t segment_size = 0;
    // Recompute the published estimate every this many updates (1 = per
    // update); the sample itself is updated on every update regardless.
    size_t refresh_period = 1;
  } sampling;

  // kCascaded. The entry bound M comes from stream.max_frequency.
  struct CascadedParams {
    double p = 2.0;  // Outer exponent, > 0.
    double k = 1.0;  // Inner exponent, > 0.
    MatrixShape shape;
    double rate = 0.25;        // Row sampling rate of each static copy.
    size_t booster_copies = 3; // Median boosting per pool/ring copy.
    size_t pool_cap = 256;     // Cap for pool-mode copy counts.
    bool force_pool = false;   // Force the plain Lemma 3.6 pool.
  } cascaded;

  // Full input validation for `task`, with every rule the constructions
  // assume: returns OK exactly when TryMakeRobust(task, *this, seed) will
  // construct, and otherwise an InvalidArgument status naming the offending
  // field. Engine-specific rules for the "sharded" registry key live in
  // ValidateShardedConfig (rs/engine/sharded.h) — they validate the
  // `engine` sub-struct this method ignores.
  [[nodiscard]] Status Validate(Task task) const;
};

// Interface implemented by every robust wrapper: the Estimator contract
// plus the uniform guarantee telemetry. `exhausted()` and
// `GuaranteeStatus().holds` agree: holds == !exhausted(). Estimator is a
// virtual base so a wrapper can also implement PointQueryEstimator (the
// heavy-hitters task) over the single shared base.
class RobustEstimator : public virtual Estimator {
 public:
  // Number of published output changes (the quantity bounded by the flip
  // number on correct executions, Lemma 3.3).
  virtual size_t output_changes() const = 0;

  // True when the flip budget has been overrun and the adversarial
  // guarantee has lapsed. Ring-mode (Theorem 4.1) constructions can never
  // exhaust and always return false.
  virtual bool exhausted() const = 0;

  // Full guarantee telemetry snapshot.
  virtual rs::GuaranteeStatus GuaranteeStatus() const = 0;

  // Provisioned memory footprint: the bytes this construction is sized to
  // occupy at capacity (copy pools with full KMV heaps, fixed counter
  // arrays, hash tables), never less than the live SpaceBytes(). This is
  // the quantity the rs::planner cost models predict and the number
  // hub-level memory accounting should budget against — SpaceBytes() of a
  // freshly built pool under-reports what the pool will grow into.
  // Defaults to the live SpaceBytes() for constructions whose layout is
  // occupancy-dependent with no closed-form capacity (FastF0 lists,
  // sampling reservoirs).
  virtual size_t MemoryFootprintBytes() const { return SpaceBytes(); }
};

// Builds the robust estimator for `task` from the unified config. Every
// invalid input returns a descriptive Status (RobustConfig::Validate) —
// this function never aborts on caller-supplied parameters.
[[nodiscard]] Result<std::unique_ptr<RobustEstimator>> TryMakeRobust(
    Task task, const RobustConfig& config, uint64_t seed);

// String-keyed variant: TryMakeRobust("f0", ...). An unknown key is
// kNotFound (RobustTaskKeys() lists the registered ones); a known key with
// an invalid config reports the same statuses as the Task overload.
[[nodiscard]] Result<std::unique_ptr<RobustEstimator>> TryMakeRobust(
    std::string_view task_key, const RobustConfig& config, uint64_t seed);

// Abort-on-error convenience over TryMakeRobust, for construction from
// trusted, hard-coded configs: RS_CHECK-fails with the status message on an
// invalid config.
std::unique_ptr<RobustEstimator> MakeRobust(Task task,
                                            const RobustConfig& config,
                                            uint64_t seed);

// String-keyed abort-on-error variant. Keeps the legacy CLI contract of
// returning nullptr for an unknown key; any other error aborts.
std::unique_ptr<RobustEstimator> MakeRobust(std::string_view task_key,
                                            const RobustConfig& config,
                                            uint64_t seed);

// Registry key of a built-in task ("f0", "fp", "entropy", "heavy_hitters",
// "bounded_deletion", "cascaded") and the reverse lookup.
const char* TaskKey(Task task);
std::optional<Task> TaskFromKey(std::string_view key);

// All registered task keys, sorted (the six built-ins plus any extensions).
std::vector<std::string> RobustTaskKeys();

// Extension hook: register an additional construction under a new key so
// alternative backends become reachable from TryMakeRobust(string) without
// touching call sites. Factories participate in the error model: they
// report invalid configs as a Status instead of aborting. Returns false if
// the key is already taken.
using RobustTaskFactory =
    std::function<Result<std::unique_ptr<RobustEstimator>>(
        const RobustConfig& config, uint64_t seed)>;
bool RegisterRobustTask(const std::string& key, RobustTaskFactory factory);

}  // namespace rs

#endif  // RS_CORE_ROBUST_H_
