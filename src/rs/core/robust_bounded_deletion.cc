#include "rs/core/robust_bounded_deletion.h"

#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/pstable_fp.h"
#include "rs/util/check.h"

namespace rs {

RobustBoundedDeletionFp::RobustBoundedDeletionFp(const RobustConfig& config,
                                                 uint64_t seed)
    : config_(config) {
  const double p = config.fp.p;
  const double alpha = config.bounded_deletion.alpha;
  // Input validation lives in RobustConfig::Validate (the facade's
  // TryMakeRobust rejects bad configs as Status values before reaching
  // this constructor); the RS_CHECKs below only guard direct, trusted
  // construction of the wrapper class itself.
  RS_CHECK(p >= 1.0 && p <= 2.0);
  RS_CHECK(alpha >= 1.0);
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);

  lambda_ = BoundedDeletionFlipNumber(config.eps / 10.0, alpha, p,
                                      config.stream.n,
                                      config.stream.max_frequency);

  ComputationPaths::Config cp;
  cp.eps = config.eps;
  cp.delta = config.delta;
  cp.m = config.stream.m;
  cp.log_T =
      p * std::log(static_cast<double>(config.stream.max_frequency)) +
      std::log(static_cast<double>(config.stream.n));
  cp.lambda = lambda_;
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = "RobustBoundedDeletionFp";

  const double eps0 = config.eps / 4.0;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [p, eps0](double delta, uint64_t s) {
        PStableFp::Config ps;
        ps.p = p;
        ps.eps = eps0;
        const double logd = std::log(1.0 / std::max(delta, 1e-300));
        ps.k_override = static_cast<size_t>(
            std::ceil((4.0 + 1.5 * logd) / (eps0 * eps0)));
        return std::make_unique<PStableFp>(ps, s);
      },
      seed);
}

void RobustBoundedDeletionFp::Update(const rs::Update& u) {
  paths_->Update(u);
}

void RobustBoundedDeletionFp::UpdateBatch(const rs::Update* ups,
                                          size_t count) {
  paths_->UpdateBatch(ups, count);
}

double RobustBoundedDeletionFp::Estimate() const { return paths_->Estimate(); }

size_t RobustBoundedDeletionFp::SpaceBytes() const {
  return paths_->SpaceBytes() + sizeof(*this);
}

rs::GuaranteeStatus RobustBoundedDeletionFp::GuaranteeStatus() const {
  rs::GuaranteeStatus status;
  status.flips_spent = output_changes();
  status.flip_budget = lambda_;
  status.copies_retired = 0;  // Single linear instance, never retired.
  status.holds = !exhausted();
  return status;
}

}  // namespace rs
