#include "rs/core/robust_bounded_deletion.h"

#include <cmath>

#include "rs/core/flip_number.h"
#include "rs/sketch/pstable_fp.h"
#include "rs/util/check.h"

namespace rs {

RobustBoundedDeletionFp::RobustBoundedDeletionFp(const Config& config,
                                                 uint64_t seed)
    : config_(config) {
  RS_CHECK(config.p >= 1.0 && config.p <= 2.0);
  RS_CHECK(config.alpha >= 1.0);
  RS_CHECK(config.eps > 0.0 && config.eps < 1.0);

  lambda_ = BoundedDeletionFlipNumber(config.eps / 10.0, config.alpha,
                                      config.p, config.n,
                                      config.max_frequency);

  ComputationPaths::Config cp;
  cp.eps = config.eps;
  cp.delta = config.delta;
  cp.m = config.m;
  cp.log_T =
      config.p * std::log(static_cast<double>(config.max_frequency)) +
      std::log(static_cast<double>(config.n));
  cp.lambda = lambda_;
  cp.theoretical_sizing = config.theoretical_sizing;
  cp.name = "RobustBoundedDeletionFp";

  const double p = config.p;
  const double eps0 = config.eps / 4.0;
  paths_ = std::make_unique<ComputationPaths>(
      cp,
      [p, eps0](double delta, uint64_t s) {
        PStableFp::Config ps;
        ps.p = p;
        ps.eps = eps0;
        const double logd = std::log(1.0 / std::max(delta, 1e-300));
        ps.k_override = static_cast<size_t>(
            std::ceil((4.0 + 1.5 * logd) / (eps0 * eps0)));
        return std::make_unique<PStableFp>(ps, s);
      },
      seed);
}

void RobustBoundedDeletionFp::Update(const rs::Update& u) {
  paths_->Update(u);
}

double RobustBoundedDeletionFp::Estimate() const { return paths_->Estimate(); }

size_t RobustBoundedDeletionFp::SpaceBytes() const {
  return paths_->SpaceBytes() + sizeof(*this);
}

}  // namespace rs
