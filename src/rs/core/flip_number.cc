#include "rs/core/flip_number.h"

#include <cmath>

#include "rs/util/check.h"

namespace rs {

size_t MonotoneFlipNumberFromLog(double eps, double log_T) {
  RS_CHECK(eps > 0.0);
  RS_CHECK(log_T >= 0.0);
  // Number of powers of (1+eps) in [1/T, T] is 2 log T / log(1+eps); +2
  // covers the initial 0 -> first nonzero transition and rounding slack.
  // For monotone g starting at g(0)=0 with g >= 1 once nonzero, only the
  // upper half [1, T] is traversed.
  return static_cast<size_t>(std::ceil(log_T / std::log1p(eps))) + 2;
}

size_t FpFlipNumber(double eps, uint64_t n, uint64_t max_frequency, double p) {
  RS_CHECK(p > 0.0);
  // Fp ranges over [1, M^p * n] for a nonzero frequency vector.
  const double log_T = p * std::log(static_cast<double>(max_frequency)) +
                       std::log(static_cast<double>(n));
  return MonotoneFlipNumberFromLog(eps, log_T);
}

size_t F0FlipNumber(double eps, uint64_t n) {
  return MonotoneFlipNumberFromLog(eps, std::log(static_cast<double>(n)));
}

size_t EntropyFlipNumber(double eps, uint64_t n, uint64_t m,
                         uint64_t max_frequency) {
  RS_CHECK(eps > 0.0 && eps < 1.0);
  // Proof of Proposition 7.2: a (1 +- eps) change of 2^H requires ||f||_1 to
  // grow by (1 + tau), tau = Theta(eps^2 / log^2 n); F1 is monotone and
  // bounded by m * M.
  const double log2n = std::max(1.0, std::log2(static_cast<double>(n)));
  const double tau = (eps * eps) / (16.0 * log2n * log2n);
  const double log_T = std::log(static_cast<double>(m)) +
                       std::log(static_cast<double>(max_frequency));
  return static_cast<size_t>(std::ceil(log_T / std::log1p(tau))) + 2;
}

size_t BoundedDeletionFlipNumber(double eps, double alpha, double p,
                                 uint64_t n, uint64_t max_frequency) {
  RS_CHECK(alpha >= 1.0);
  RS_CHECK(p >= 1.0);
  // Lemma 8.2: each flip of ||f||_p forces ||h||_p^p (monotone, <= M^p n) to
  // grow by a (1 + eps^p / alpha) factor.
  const double growth = std::pow(eps, p) / alpha;
  const double log_T = p * std::log(static_cast<double>(max_frequency)) +
                       std::log(static_cast<double>(n));
  return static_cast<size_t>(std::ceil(log_T / std::log1p(growth))) + 2;
}

size_t CascadedMomentFlipNumber(double eps, uint64_t rows, uint64_t cols,
                                uint64_t max_entry, double p, double k) {
  RS_CHECK(p > 0.0);
  RS_CHECK(k > 0.0);
  // Proposition 3.4 with T = rows * (cols * M^k)^{p/k}: the moment is
  // monotone on insertion-only matrix streams and >= 1 once non-zero.
  const double log_T =
      std::log(static_cast<double>(rows)) +
      (p / k) * std::log(static_cast<double>(cols)) +
      p * std::log(static_cast<double>(max_entry));
  return MonotoneFlipNumberFromLog(eps, std::max(1.0, log_T));
}

size_t CascadedNormFlipNumber(double eps, uint64_t rows, uint64_t cols,
                              uint64_t max_entry, double p, double k) {
  RS_CHECK(p > 0.0);
  RS_CHECK(k > 0.0);
  const double log_T =
      std::log(static_cast<double>(rows)) / p +
      std::log(static_cast<double>(cols)) / k +
      std::log(static_cast<double>(max_entry));
  return MonotoneFlipNumberFromLog(eps, std::max(1.0, log_T));
}

size_t EmpiricalFlipNumber(const std::vector<double>& values, double eps) {
  // Greedy maximal chain i_1 < ... < i_k with
  // y_{i_{j-1}} outside [(1-eps) y_{i_j}, (1+eps) y_{i_j}].
  if (values.empty()) return 0;
  size_t flips = 1;  // The chain may start anywhere; count its first anchor.
  double anchor = values[0];
  for (size_t i = 1; i < values.size(); ++i) {
    const double y = values[i];
    const double lo = y >= 0.0 ? (1.0 - eps) * y : (1.0 + eps) * y;
    const double hi = y >= 0.0 ? (1.0 + eps) * y : (1.0 - eps) * y;
    if (anchor < lo || anchor > hi) {
      ++flips;
      anchor = y;
    }
  }
  return flips;
}

}  // namespace rs
