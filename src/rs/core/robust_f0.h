// robust_f0.h — adversarially robust distinct-elements (F0) estimation.
//
// Wraps: KMV tracking sketches (kSketchSwitching, kDifferentialPrivacy) or
// a single FastF0 instance (kComputationPaths).
// Technique: sketch switching with the Theorem 4.1 restart ring, the
// Lemma 3.8 computation-paths union bound, or the HKMMS private-median pool
// (rs/dp/).
// Parameters: `eps` — multiplicative accuracy of every published estimate
// (1 +- eps, against an adaptive adversary); `delta` — overall failure
// probability of the whole adaptive execution; the flip-number budget is
// derived internally from (eps, n) via F0FlipNumber (Corollary 3.5) and
// sizes the copy ring / the union bound / the dp pool.

#ifndef RS_CORE_ROBUST_F0_H_
#define RS_CORE_ROBUST_F0_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rs/core/computation_paths.h"
#include "rs/core/robust.h"
#include "rs/core/sketch_switching.h"
#include "rs/dp/dp_robust.h"
#include "rs/sketch/estimator.h"

namespace rs {

// First-class sizing for every RobustF0 construction — the formulas the
// constructor derives its geometry from, queryable without building
// anything (the rs::planner cost models price candidate configs through
// this; the constructor itself consumes it, so the two cannot drift).
// `config` must be Validate(Task::kF0)-clean; `config.method` selects the
// construction exactly as the constructor does.
struct F0Sizing {
  double base_eps = 0.0;   // eps0 the KMV / FastF0 base runs at (eps/4).
  size_t kmv_k = 0;        // KMV heap size (switching/dp; 0 for paths).
  size_t copies = 1;       // Ring (switching) / dp pool copies; 1 for paths.
  size_t flip_budget = 0;  // 0 = unbounded ring; the dp / paths lambda.
  // Provisioned footprint of the full construction (every copy at KMV
  // capacity, tabulation tables included) — what MemoryFootprintBytes()
  // reports. 0 when the base's occupancy-dependent layout (FastF0) admits
  // no closed form; read the live SpaceBytes() instead.
  size_t provisioned_bytes = 0;
};
F0Sizing F0SizingFor(const RobustConfig& config);

// Adversarially robust distinct-elements (F0) estimation, Section 5.
//
// Three constructions:
//  * kSketchSwitching (Theorem 1.1 / 5.1): a ring of independent KMV
//    tracking sketches behind the Algorithm 1 gate, with the Theorem 4.1
//    restart optimization (Theta(eps^-1 log eps^-1) copies).
//  * kComputationPaths (Theorem 1.2 / 5.4): a single FastF0 instance
//    (the paper's Algorithm 2) instantiated at the tiny delta0 required by
//    Lemma 3.8, published through an eps/2-rounder. FastF0's update time
//    depends only poly-log-log on 1/delta0, which is the point of the
//    construction.
//  * kDifferentialPrivacy (HKMMS, arXiv:2004.05975): ~sqrt(lambda) KMV
//    copies behind a sparse-vector-gated private median (rs/dp/dp_robust.h)
//    — asymptotically fewer copies than the Lemma 3.6 pool in flip-heavy
//    regimes, priced by a privacy budget instead of copy retirement.
class RobustF0 : public RobustEstimator {
 public:
  using Method = rs::Method;

  RobustF0(const RobustConfig& config, uint64_t seed);

  void Update(const rs::Update& u) override;
  void UpdateBatch(const rs::Update* ups, size_t count) override;
  double Estimate() const override;
  size_t SpaceBytes() const override;
  std::string Name() const override;

  // RobustEstimator telemetry. Ring mode never exhausts; the paths method
  // lapses once the output changed more often than the Lemma 3.8 lambda;
  // the dp method lapses when a flip is needed after the SVT budget ran
  // out.
  size_t output_changes() const override;
  bool exhausted() const override;
  rs::GuaranteeStatus GuaranteeStatus() const override;

  // Provisioned capacity from F0SizingFor (switching/dp); live SpaceBytes()
  // for the occupancy-dependent paths base.
  size_t MemoryFootprintBytes() const override;

  const RobustConfig& config() const { return config_; }

 private:
  RobustConfig config_;
  F0Sizing sizing_;
  std::unique_ptr<SketchSwitching> switching_;
  std::unique_ptr<ComputationPaths> paths_;
  std::unique_ptr<DpRobust> dp_;
};

}  // namespace rs

#endif  // RS_CORE_ROBUST_F0_H_
