#ifndef RS_CORE_COMPUTATION_PATHS_H_
#define RS_CORE_COMPUTATION_PATHS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rs/core/rounding.h"
#include "rs/sketch/estimator.h"

namespace rs {

// Computation paths (Lemma 3.8) — the paper's second generic
// robustification framework.
//
// One instance of the static algorithm is run with failure probability
// delta0 so small that a union bound covers *every* output sequence the
// rounded algorithm could ever publish:
//
//   delta0 = delta / ( C(m, lambda) * Theta(eps^-1 log T)^lambda ),
//
// because a deterministic adversary's stream is a function of the published
// (eps-rounded, sticky) outputs, and a rounded output sequence with at most
// lambda changes over m steps, each change landing on a power of (1+eps) in
// [1/T, T], is one of at most C(m, lambda) * O(eps^-1 log T)^lambda
// possibilities. Conditioned on the static algorithm being correct on all of
// those (fixed) streams, the adversary is powerless.
//
// The wrapper publishes the eps/2-rounding of the instance's estimate
// (Definition 3.7). The base algorithm is built by a DeltaEstimatorFactory,
// since the whole point is that algorithms with mild delta-dependence (e.g.
// FastF0, whose update time depends only log-log-style on 1/delta) make this
// reduction cheap — that is Theorem 1.2/5.4.
//
// Sizing modes: RequiredLogDelta0 computes the exact Lemma 3.8 bound (used
// in benchmark reports); PracticalLogDelta0 is the calibrated default used
// to instantiate runnable configurations (see DESIGN.md section 6 on
// constant calibration — the asymptotics are identical, the constants are
// not astronomically pessimistic).
class ComputationPaths : public Estimator {
 public:
  struct Config {
    double eps = 0.1;      // Published output accuracy target.
    double delta = 0.01;   // Overall adversarial failure probability.
    uint64_t m = 1 << 20;  // Bound on the stream length.
    double log_T = 40.0;   // ln T, with outputs in [1/T, T] (Lemma 3.8).
    size_t lambda = 64;    // Flip number bound for the tracked quantity.
    bool theoretical_sizing = false;  // Use the exact Lemma 3.8 delta0.
    std::string name = "ComputationPaths";
  };

  // ln delta0 per Lemma 3.8 (computed in log-space with lgamma; the value
  // itself underflows any floating-point representation by design).
  static double RequiredLogDelta0(const Config& config);

  // Calibrated practical target: delta / (m * lambda * eps^-1 log T).
  static double PracticalLogDelta0(const Config& config);

  ComputationPaths(const Config& config, const DeltaEstimatorFactory& factory,
                   uint64_t seed);

  void Update(const rs::Update& u) override;

  // Batched hot path: the base instance consumes the whole batch, then the
  // rounder re-reads its estimate ONCE at the batch boundary (the sticky
  // published output cannot move between flips, so per-batch publication is
  // the granularity a batch-streaming caller observes anyway).
  void UpdateBatch(const rs::Update* ups, size_t count) override;

  // The published output: the eps/2-rounded, sticky view of the single
  // instance's estimate.
  double Estimate() const override;

  size_t SpaceBytes() const override;
  std::string Name() const override { return config_.name; }

  // Number of published-output changes so far (<= lambda on correct runs).
  size_t output_changes() const { return rounder_.change_count(); }

  // The delta0 the base instance was instantiated with (as ln delta0).
  double instantiated_log_delta0() const { return log_delta0_; }

  // The flip-number budget the Lemma 3.8 union bound was sized for; output
  // sequences with more than this many changes void the guarantee.
  size_t lambda() const { return config_.lambda; }

 private:
  Config config_;
  double log_delta0_;
  std::unique_ptr<Estimator> base_;
  EpsilonRounder rounder_;
};

}  // namespace rs

#endif  // RS_CORE_COMPUTATION_PATHS_H_
