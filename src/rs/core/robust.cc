#include "rs/core/robust.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "rs/core/robust_bounded_deletion.h"
#include "rs/core/robust_cascaded.h"
#include "rs/core/robust_entropy.h"
#include "rs/core/robust_f0.h"
#include "rs/core/robust_fp.h"
#include "rs/core/robust_heavy_hitters.h"
#include "rs/dp/difference_estimator.h"
#include "rs/engine/sharded.h"
#include "rs/sampling/sampling_robust.h"

namespace rs {

namespace {

// The registry holds every string-reachable construction. Keys are stable
// snake_case identifiers (they appear in bench tables and CLI flags).
std::map<std::string, RobustTaskFactory, std::less<>>& Registry() {
  static auto* registry = [] {
    auto* r = new std::map<std::string, RobustTaskFactory, std::less<>>();
    for (Task task : kAllRobustTasks) {
      (*r)[TaskKey(task)] = [task](const RobustConfig& config, uint64_t seed) {
        return TryMakeRobust(task, config, seed);
      };
    }
    // The sharded engine (rs/engine/sharded.h): same tasks, multi-shard
    // execution. config.engine selects shards/merge_period/task.
    (*r)["sharded"] = [](const RobustConfig& config, uint64_t seed) {
      return TryMakeShardedRobust(config, seed);
    };
    // The differential-privacy method (rs/dp/): the F0/Fp tasks under the
    // HKMMS private-median pool, sized by the sqrt(lambda) formula, plus
    // the ACSS difference-estimator F2 construction. config.dp selects
    // budget/copies/flip budget.
    (*r)["dp_f0"] = [](const RobustConfig& config, uint64_t seed) {
      RobustConfig c = config;
      c.method = Method::kDifferentialPrivacy;
      return TryMakeRobust(Task::kF0, c, seed);
    };
    (*r)["dp_fp"] = [](const RobustConfig& config, uint64_t seed) {
      RobustConfig c = config;
      c.method = Method::kDifferentialPrivacy;
      return TryMakeRobust(Task::kFp, c, seed);
    };
    (*r)["dp_f2_diff"] = [](const RobustConfig& config, uint64_t seed) {
      return TryMakeDpF2Diff(config, seed);
    };
    // The importance-sampling method (rs/sampling/): Fp via the PPS
    // position sampler, and the L2-regression coreset task (which has no
    // Task enum value — it exists only under this method). config.sampling
    // selects sample_size/influence_cap/warmup/segment/refresh.
    (*r)["is_fp"] = [](const RobustConfig& config, uint64_t seed)
        -> Result<std::unique_ptr<RobustEstimator>> {
      RobustConfig c = config;
      c.method = Method::kImportanceSampling;
      return TryMakeRobust(Task::kFp, c, seed);
    };
    (*r)["is_regression"] = [](const RobustConfig& config, uint64_t seed)
        -> Result<std::unique_ptr<RobustEstimator>> {
      RS_ASSIGN_OR(auto head, TryMakeSamplingRegression(config, seed));
      return std::unique_ptr<RobustEstimator>(std::move(head));
    };
    return r;
  }();
  return *registry;
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// "field: <requirement>, got <value>" — every rejection names the offending
// field so a multi-tenant operator can fix the config without reading our
// source.
Status BadField(const char* field, const char* requirement, double got) {
  std::string msg = field;
  msg += ": ";
  msg += requirement;
  msg += ", got ";
  msg += FmtDouble(got);
  return InvalidArgument(std::move(msg));
}

}  // namespace

Status RobustConfig::Validate(Task task) const {
  // Rules shared by every task. The lower eps bound is a resource-sanity
  // floor, not theory: copy counts and base-sketch widths scale as
  // poly(1/eps), so an absurdly small eps would pass range checks and
  // then kill a multi-tenant process with an allocation failure — the
  // exact class of abort Validate() exists to turn into a Status. The
  // same reasoning caps the override/geometry fields below.
  if (!(eps >= 1e-4 && eps < 1.0)) {
    return BadField("eps", "must be in [0.0001, 1)", eps);
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return BadField("delta", "must be in (0, 1)", delta);
  }
  if (stream.n < 1) {
    return BadField("stream.n", "domain size must be >= 1",
                    static_cast<double>(stream.n));
  }
  if (stream.m < 1) {
    return BadField("stream.m", "stream length bound must be >= 1",
                    static_cast<double>(stream.m));
  }
  if (stream.max_frequency < 1) {
    return BadField("stream.max_frequency",
                    "frequency bound M must be >= 1",
                    static_cast<double>(stream.max_frequency));
  }

  // Frequency-moment tasks on insertion-only streams: a single item can
  // absorb all m insertions, so a frequency bound below the stream length
  // is a promise the stream model itself cannot keep — reject the config
  // as contradictory rather than size sketches from it. (kCascaded is
  // exempt: its max_frequency is the matrix entry bound of Proposition
  // 3.4, not a per-item frequency cap; kBoundedDeletion streams are
  // turnstile-shaped by definition.)
  const bool frequency_bounded_task =
      task == Task::kF0 || task == Task::kFp || task == Task::kEntropy ||
      task == Task::kHeavyHitters;
  if (frequency_bounded_task && stream.model == StreamModel::kInsertionOnly &&
      stream.m > stream.max_frequency) {
    return BadField(
        "stream.max_frequency",
        "insertion-only streams admit frequencies up to m; require M >= m",
        static_cast<double>(stream.max_frequency));
  }

  // The importance-sampling method is implemented exactly for the Fp task
  // (p in [1, 2], insertion-only — the regime where position sampling is an
  // unbiased Fp estimator); every other task rejects it loudly instead of
  // silently falling back to a flip-number construction.
  if (method == Method::kImportanceSampling) {
    if (task != Task::kFp) {
      return InvalidArgument(
          "method: Method::kImportanceSampling is implemented for Task::kFp "
          "only (for the regression coreset use the 'is_regression' "
          "registry key)");
    }
    if (!(fp.p >= 1.0 && fp.p <= 2.0)) {
      return BadField("fp.p",
                      "importance-sampling Fp requires p in [1, 2]", fp.p);
    }
    RS_TRY(ValidateSamplingParams(*this));
  }

  // The differential-privacy method is dispatched for kF0/kFp (the tasks
  // whose bases are the linear/mergeable sketches the HKMMS analysis
  // assumes); single-construction tasks document the method field as
  // ignored, so its sub-config is only validated where it is honored.
  if (method == Method::kDifferentialPrivacy &&
      (task == Task::kF0 || task == Task::kFp)) {
    if (!(dp.epsilon > 0.0)) {
      return BadField("dp.epsilon", "privacy budget must be > 0", dp.epsilon);
    }
    if (dp.gate_period < 1) {
      return BadField("dp.gate_period", "must be >= 1 update per gate",
                      static_cast<double>(dp.gate_period));
    }
    // DpRobust needs an odd-median-sized pool of at least 3 copies; the
    // upper bound keeps a forged override from driving the copy-pool
    // allocation itself past any sane memory budget.
    if (dp.copies_override != 0 &&
        (dp.copies_override < 3 || dp.copies_override > (1u << 20))) {
      return BadField("dp.copies_override",
                      "must be 0 (auto) or in [3, 1048576]",
                      static_cast<double>(dp.copies_override));
    }
  }

  switch (task) {
    case Task::kF0:
    case Task::kEntropy:
    case Task::kHeavyHitters:
      break;
    case Task::kFp:
      if (!(fp.p > 0.0)) {
        return BadField("fp.p", "moment order must be > 0", fp.p);
      }
      if (method == Method::kDifferentialPrivacy && fp.p > 2.0) {
        return BadField(
            "fp.p", "the dp method runs on the p-stable path, which needs "
            "p <= 2", fp.p);
      }
      if (fp.highp_s1_override > (1u << 26) ||
          fp.highp_s2_override > (1u << 26)) {
        return InvalidArgument(
            "fp.highp_s1_override/highp_s2_override: sampling-size "
            "overrides are capped at 2^26");
      }
      break;
    case Task::kBoundedDeletion:
      if (!(fp.p >= 1.0 && fp.p <= 2.0)) {
        return BadField("fp.p", "bounded-deletion Fp requires p in [1, 2]",
                        fp.p);
      }
      if (!(bounded_deletion.alpha >= 1.0)) {
        return BadField("bounded_deletion.alpha",
                        "Definition 8.1 requires alpha >= 1",
                        bounded_deletion.alpha);
      }
      break;
    case Task::kCascaded:
      if (!(cascaded.p > 0.0)) {
        return BadField("cascaded.p", "outer exponent must be > 0",
                        cascaded.p);
      }
      if (!(cascaded.k > 0.0)) {
        return BadField("cascaded.k", "inner exponent must be > 0",
                        cascaded.k);
      }
      if (cascaded.shape.rows < 1 || cascaded.shape.cols < 1 ||
          cascaded.shape.rows > (1u << 24) ||
          cascaded.shape.cols > (1u << 24)) {
        return InvalidArgument(
            "cascaded.shape: rows and cols must both be in [1, 2^24]");
      }
      if (!(cascaded.rate > 0.0 && cascaded.rate <= 1.0)) {
        return BadField("cascaded.rate", "sampling rate must be in (0, 1]",
                        cascaded.rate);
      }
      if (cascaded.booster_copies > 4096) {
        return BadField("cascaded.booster_copies",
                        "median-boosting fan-out is capped at 4096",
                        static_cast<double>(cascaded.booster_copies));
      }
      break;
  }
  return Status::Ok();
}

Result<std::unique_ptr<RobustEstimator>> TryMakeRobust(
    Task task, const RobustConfig& config, uint64_t seed) {
  RS_TRY(config.Validate(task));
  // Validate() established every precondition the constructors check;
  // their remaining RS_CHECKs are internal invariants from here on.
  switch (task) {
    case Task::kF0:
      return std::unique_ptr<RobustEstimator>(
          std::make_unique<RobustF0>(config, seed));
    case Task::kFp:
      if (config.method == Method::kImportanceSampling) {
        RS_ASSIGN_OR(auto head, TryMakeSamplingFp(config, seed));
        return std::unique_ptr<RobustEstimator>(std::move(head));
      }
      return std::unique_ptr<RobustEstimator>(
          std::make_unique<RobustFp>(config, seed));
    case Task::kEntropy:
      return std::unique_ptr<RobustEstimator>(
          std::make_unique<RobustEntropy>(config, seed));
    case Task::kHeavyHitters:
      return std::unique_ptr<RobustEstimator>(
          std::make_unique<RobustHeavyHitters>(config, seed));
    case Task::kBoundedDeletion:
      return std::unique_ptr<RobustEstimator>(
          std::make_unique<RobustBoundedDeletionFp>(config, seed));
    case Task::kCascaded:
      return std::unique_ptr<RobustEstimator>(
          std::make_unique<RobustCascadedNorm>(config, seed));
  }
  return Internal("TryMakeRobust: unhandled Task enum value");
}

Result<std::unique_ptr<RobustEstimator>> TryMakeRobust(
    std::string_view task_key, const RobustConfig& config, uint64_t seed) {
  const auto& registry = Registry();
  const auto it = registry.find(task_key);
  if (it == registry.end()) {
    std::string msg = "unknown robust task key '";
    msg += task_key;
    msg += "' (registered:";
    for (const auto& key : RobustTaskKeys()) {
      msg += ' ';
      msg += key;
    }
    msg += ')';
    return NotFound(std::move(msg));
  }
  return it->second(config, seed);
}

std::unique_ptr<RobustEstimator> MakeRobust(Task task,
                                            const RobustConfig& config,
                                            uint64_t seed) {
  auto result = TryMakeRobust(task, config, seed);
  RS_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

std::unique_ptr<RobustEstimator> MakeRobust(std::string_view task_key,
                                            const RobustConfig& config,
                                            uint64_t seed) {
  auto result = TryMakeRobust(task_key, config, seed);
  if (!result.ok() && result.status().code() == StatusCode::kNotFound) {
    return nullptr;  // Legacy CLI contract for unknown keys.
  }
  RS_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return std::move(result).value();
}

const char* TaskKey(Task task) {
  switch (task) {
    case Task::kF0:
      return "f0";
    case Task::kFp:
      return "fp";
    case Task::kEntropy:
      return "entropy";
    case Task::kHeavyHitters:
      return "heavy_hitters";
    case Task::kBoundedDeletion:
      return "bounded_deletion";
    case Task::kCascaded:
      return "cascaded";
  }
  return "unknown";
}

const char* MethodKey(Method method) {
  switch (method) {
    case Method::kSketchSwitching:
      return "switching";
    case Method::kComputationPaths:
      return "paths";
    case Method::kDifferentialPrivacy:
      return "dp";
    case Method::kImportanceSampling:
      return "sampling";
  }
  return "unknown";
}

std::optional<Task> TaskFromKey(std::string_view key) {
  for (Task task : kAllRobustTasks) {
    if (key == TaskKey(task)) return task;
  }
  return std::nullopt;
}

std::vector<std::string> RobustTaskKeys() {
  std::vector<std::string> keys;
  keys.reserve(Registry().size());
  for (const auto& [key, factory] : Registry()) keys.push_back(key);
  return keys;  // std::map iteration order is already sorted.
}

bool RegisterRobustTask(const std::string& key, RobustTaskFactory factory) {
  return Registry().emplace(key, std::move(factory)).second;
}

}  // namespace rs
