#include "rs/core/robust.h"

#include <algorithm>
#include <map>
#include <utility>

#include "rs/core/robust_bounded_deletion.h"
#include "rs/core/robust_cascaded.h"
#include "rs/core/robust_entropy.h"
#include "rs/core/robust_f0.h"
#include "rs/core/robust_fp.h"
#include "rs/core/robust_heavy_hitters.h"
#include "rs/dp/difference_estimator.h"
#include "rs/engine/sharded.h"

namespace rs {

namespace {

// The registry holds every string-reachable construction. Keys are stable
// snake_case identifiers (they appear in bench tables and CLI flags).
std::map<std::string, RobustTaskFactory, std::less<>>& Registry() {
  static auto* registry = [] {
    auto* r = new std::map<std::string, RobustTaskFactory, std::less<>>();
    for (Task task : kAllRobustTasks) {
      (*r)[TaskKey(task)] = [task](const RobustConfig& config, uint64_t seed) {
        return MakeRobust(task, config, seed);
      };
    }
    // The sharded engine (rs/engine/sharded.h): same tasks, multi-shard
    // execution. config.engine selects shards/merge_period/task.
    (*r)["sharded"] = [](const RobustConfig& config, uint64_t seed) {
      return MakeShardedRobust(config, seed);
    };
    // The differential-privacy method (rs/dp/): the F0/Fp tasks under the
    // HKMMS private-median pool, sized by the sqrt(lambda) formula, plus
    // the ACSS difference-estimator F2 construction. config.dp selects
    // budget/copies/flip budget.
    (*r)["dp_f0"] = [](const RobustConfig& config, uint64_t seed) {
      RobustConfig c = config;
      c.method = Method::kDifferentialPrivacy;
      return MakeRobust(Task::kF0, c, seed);
    };
    (*r)["dp_fp"] = [](const RobustConfig& config, uint64_t seed) {
      RobustConfig c = config;
      c.method = Method::kDifferentialPrivacy;
      return MakeRobust(Task::kFp, c, seed);
    };
    (*r)["dp_f2_diff"] = [](const RobustConfig& config, uint64_t seed) {
      return MakeDpF2Diff(config, seed);
    };
    return r;
  }();
  return *registry;
}

}  // namespace

std::unique_ptr<RobustEstimator> MakeRobust(Task task,
                                            const RobustConfig& config,
                                            uint64_t seed) {
  switch (task) {
    case Task::kF0:
      return std::make_unique<RobustF0>(config, seed);
    case Task::kFp:
      return std::make_unique<RobustFp>(config, seed);
    case Task::kEntropy:
      return std::make_unique<RobustEntropy>(config, seed);
    case Task::kHeavyHitters:
      return std::make_unique<RobustHeavyHitters>(config, seed);
    case Task::kBoundedDeletion:
      return std::make_unique<RobustBoundedDeletionFp>(config, seed);
    case Task::kCascaded:
      return std::make_unique<RobustCascadedNorm>(config, seed);
  }
  return nullptr;  // Unreachable for valid enum values.
}

std::unique_ptr<RobustEstimator> MakeRobust(std::string_view task_key,
                                            const RobustConfig& config,
                                            uint64_t seed) {
  const auto& registry = Registry();
  const auto it = registry.find(task_key);
  if (it == registry.end()) return nullptr;
  return it->second(config, seed);
}

const char* TaskKey(Task task) {
  switch (task) {
    case Task::kF0:
      return "f0";
    case Task::kFp:
      return "fp";
    case Task::kEntropy:
      return "entropy";
    case Task::kHeavyHitters:
      return "heavy_hitters";
    case Task::kBoundedDeletion:
      return "bounded_deletion";
    case Task::kCascaded:
      return "cascaded";
  }
  return "unknown";
}

std::optional<Task> TaskFromKey(std::string_view key) {
  for (Task task : kAllRobustTasks) {
    if (key == TaskKey(task)) return task;
  }
  return std::nullopt;
}

std::vector<std::string> RobustTaskKeys() {
  std::vector<std::string> keys;
  keys.reserve(Registry().size());
  for (const auto& [key, factory] : Registry()) keys.push_back(key);
  return keys;  // std::map iteration order is already sorted.
}

bool RegisterRobustTask(const std::string& key, RobustTaskFactory factory) {
  return Registry().emplace(key, std::move(factory)).second;
}

}  // namespace rs
