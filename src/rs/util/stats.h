#ifndef RS_UTIL_STATS_H_
#define RS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace rs {

// Order statistics and aggregation helpers used by median-boosted sketches
// and by the benchmark harness.

// Median of `v` (average of the two middle elements for even sizes).
// `v` is taken by value because the computation needs a scratch copy.
double Median(std::vector<double> v);

// q-th quantile of `v` for q in [0, 1] (nearest-rank, linear interpolation).
double Quantile(std::vector<double> v, double q);

double Mean(const std::vector<double>& v);

// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double StdDev(const std::vector<double>& v);

// Median-of-means: partition `v` into `groups` contiguous groups, average
// each group, return the median of the group averages. Requires
// 1 <= groups <= v.size().
double MedianOfMeans(const std::vector<double>& v, size_t groups);

// Relative error |estimate - truth| / |truth|; returns |estimate| when
// truth == 0 (so exact zero estimates count as 0 error).
double RelativeError(double estimate, double truth);

}  // namespace rs

#endif  // RS_UTIL_STATS_H_
