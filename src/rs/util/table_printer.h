#ifndef RS_UTIL_TABLE_PRINTER_H_
#define RS_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace rs {

// Renders fixed-width ASCII tables for the benchmark harness, so that every
// bench binary prints rows in the same format as the paper's Table 1.
//
// Usage:
//   TablePrinter t({"eps", "static bytes", "robust bytes", "ratio"});
//   t.AddRow({"0.1", "1024", "53248", "52.0"});
//   t.Print(title);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Formatting helpers for cells.
  static std::string Fmt(double v, int precision = 3);
  static std::string FmtInt(long long v);
  static std::string FmtBytes(size_t bytes);

  void Print(const std::string& title) const;

  // Raw access for the --json mirror (rs/util/bench_json.h).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rs

#endif  // RS_UTIL_TABLE_PRINTER_H_
