#include "rs/util/rng.h"

#include <cmath>

#include "rs/util/check.h"

namespace rs {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four xoshiro words from successive splitmix64 outputs, as
  // recommended by the xoshiro authors.
  uint64_t s = seed;
  for (auto& w : s_) {
    s += 0x9e3779b97f4a7c15ULL;
    w = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  RS_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  for (;;) {
    const double d = NextDouble();
    if (d > 0.0) return d;
  }
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  const double u1 = NextDoubleOpen();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential() { return -std::log(NextDoubleOpen()); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace rs
