#ifndef RS_UTIL_CHECK_H_
#define RS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight invariant-checking macros (the project does not use exceptions).
//
// RS_CHECK(cond) aborts with a diagnostic if `cond` is false. It is always
// enabled, including in release builds, and is reserved for invariants whose
// violation would make further execution meaningless (e.g. a wrapper being fed
// an update that violates the declared stream model).
//
// RS_DCHECK(cond) compiles away in NDEBUG builds.

#define RS_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RS_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RS_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RS_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define RS_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define RS_DCHECK(cond) RS_CHECK(cond)
#endif

#endif  // RS_UTIL_CHECK_H_
