// status.h — error-as-value reporting for every input-dependent failure.
//
// The library serves two kinds of failure. Internal invariants — conditions
// no caller-supplied input can violate once construction succeeded — keep
// aborting through RS_CHECK (rs/util/check.h): continuing past them would
// compute garbage. Everything an untrusted input can trigger (a malformed
// config from one tenant of a StreamHub, a corrupt snapshot, an unknown
// registry key) is reported as a value instead: `rs::Status` carries a
// machine-checkable code plus a human-readable message naming the offending
// field, and `rs::Result<T>` is either a value or such a status. A
// multi-tenant process must never die because one tenant sent bad bytes.
//
// The project does not use exceptions; RS_TRY / RS_ASSIGN_OR give the
// early-return plumbing the same one-line ergonomics.

#ifndef RS_UTIL_STATUS_H_
#define RS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "rs/util/check.h"

namespace rs {

// Failure taxonomy (a deliberately small subset of the canonical codes).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,    // A config/parameter value is out of range.
  kNotFound = 2,           // Unknown registry key / stream name.
  kAlreadyExists = 3,      // Name collision on creation.
  kFailedPrecondition = 4, // The operation is unsupported in this state.
  kUnimplemented = 5,      // Recognized but unsupported (e.g. future kind).
  kDataLoss = 6,           // Malformed / truncated / corrupt wire bytes.
  kInternal = 7,           // A bug on our side surfaced as a value.
};

// Stable upper-case name of a code ("INVALID_ARGUMENT", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// A code plus a message. The message of an error names the offending field
// or byte range; the OK status carries no message.
//
// [[nodiscard]] on the class: any call that returns a Status (or Result)
// by value and ignores it is a compile warning — promoted to an error in
// the CI analyze build. An error the caller never looks at is a silently
// swallowed failure, which is exactly the bug class this type exists to
// prevent.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    RS_DCHECK(code != StatusCode::kOk || message_.empty());
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: snapshot truncated at stream 3" (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Constructors for the error codes, so call sites read as the failure they
// report: return InvalidArgument("eps: must be in (0, 1), got 2.0").
inline Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
inline Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status DataLoss(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

// Either a T or a non-OK Status. Accessing value() on an error (or
// status()'s message of an OK result) is a programming error and aborts —
// callers branch on ok() or use RS_ASSIGN_OR.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from a value (OK) or from a non-OK status, so factories can
  // `return estimator;` and `return InvalidArgument(...);` symmetrically.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    RS_CHECK_MSG(!status_.ok(), "Result built from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RS_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    RS_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    RS_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rs

// Propagates a non-OK Status to the caller: RS_TRY(DoThing());
#define RS_TRY(expr)                              \
  do {                                            \
    ::rs::Status rs_try_status_ = (expr);         \
    if (!rs_try_status_.ok()) return rs_try_status_; \
  } while (0)

#define RS_STATUS_CONCAT_INNER_(a, b) a##b
#define RS_STATUS_CONCAT_(a, b) RS_STATUS_CONCAT_INNER_(a, b)

// Unwraps a Result<T> into `lhs` or propagates its error status:
//   RS_ASSIGN_OR(auto sketch, DeserializeSketch(bytes));
#define RS_ASSIGN_OR(lhs, rexpr)                                      \
  auto RS_STATUS_CONCAT_(rs_result_, __LINE__) = (rexpr);             \
  if (!RS_STATUS_CONCAT_(rs_result_, __LINE__).ok())                  \
    return RS_STATUS_CONCAT_(rs_result_, __LINE__).status();          \
  lhs = std::move(RS_STATUS_CONCAT_(rs_result_, __LINE__)).value()

#endif  // RS_UTIL_STATUS_H_
