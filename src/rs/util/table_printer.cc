#include "rs/util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "rs/util/check.h"

namespace rs {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  RS_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  RS_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtInt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TablePrinter::FmtBytes(size_t bytes) {
  char buf[64];
  if (bytes < 16 * 1024) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else if (bytes < 16 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  }
  return buf;
}

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  size_t total = 1;
  for (size_t w : widths) total += w + 3;

  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(total, '-').c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
  std::printf("%s\n", std::string(total, '-').c_str());
}

}  // namespace rs
