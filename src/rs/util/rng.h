#ifndef RS_UTIL_RNG_H_
#define RS_UTIL_RNG_H_

#include <cstdint>

namespace rs {

// Mixes a 64-bit value through the splitmix64 finalizer. This is the seeding
// primitive used throughout the library: it turns correlated seeds (e.g.
// seed, seed+1, ...) into statistically independent-looking states.
uint64_t SplitMix64(uint64_t x);

// Deterministic pseudo-random generator (xoshiro256++). Every randomized
// component of the library draws its randomness either from an explicit
// hash-function object or from an Rng constructed from a caller-provided
// 64-bit seed, so all experiments are reproducible.
//
// Not cryptographically secure; for adversarially hidden randomness see
// rs::hash::ChaChaPrf.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Unbiased (rejection sampling).
  uint64_t Below(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in (0, 1) — never returns exactly 0; safe for log().
  double NextDoubleOpen();

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Exponential with rate 1.
  double NextExponential();

  // True with probability p.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rs

#endif  // RS_UTIL_RNG_H_
