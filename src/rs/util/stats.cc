#include "rs/util/stats.h"

#include <algorithm>
#include <cmath>

#include "rs/util/check.h"

namespace rs {

double Median(std::vector<double> v) {
  RS_CHECK(!v.empty());
  const size_t n = v.size();
  const size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (n % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
  return 0.5 * (v[mid - 1] + hi);
}

double Quantile(std::vector<double> v, double q) {
  RS_CHECK(!v.empty());
  RS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Mean(const std::vector<double>& v) {
  RS_CHECK(!v.empty());
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mu = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

double MedianOfMeans(const std::vector<double>& v, size_t groups) {
  RS_CHECK(groups >= 1 && groups <= v.size());
  std::vector<double> means;
  means.reserve(groups);
  const size_t per = v.size() / groups;
  for (size_t g = 0; g < groups; ++g) {
    const size_t begin = g * per;
    // The last group absorbs the remainder.
    const size_t end = (g + 1 == groups) ? v.size() : begin + per;
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += v[i];
    means.push_back(sum / static_cast<double>(end - begin));
  }
  return Median(std::move(means));
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return std::fabs(estimate);
  return std::fabs(estimate - truth) / std::fabs(truth);
}

}  // namespace rs
