#ifndef RS_UTIL_BITS_H_
#define RS_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace rs {

// Bit-manipulation helpers shared by the hashing and sketching layers.

// Number of leading zero bits of x; 64 for x == 0.
inline int CountLeadingZeros64(uint64_t x) { return std::countl_zero(x); }

// floor(log2(x)) for x > 0.
inline int Log2Floor(uint64_t x) { return 63 - std::countl_zero(x | 1); }

// ceil(log2(x)) for x > 0; 0 for x == 1.
inline int Log2Ceil(uint64_t x) {
  const int f = Log2Floor(x);
  return f + ((x & (x - 1)) != 0 ? 1 : 0);
}

// Smallest power of two >= x (x must be <= 2^63).
inline uint64_t NextPow2(uint64_t x) {
  if (x <= 1) return 1;
  return uint64_t{1} << Log2Ceil(x);
}

inline bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace rs

#endif  // RS_UTIL_BITS_H_
