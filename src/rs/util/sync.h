// sync.h — capability-annotated synchronization primitives.
//
// The framework's concurrency claims (striped locking in the StreamHub,
// the publish-boundary contract of the sharded engine, the lazily built
// calibration caches in sketch/stable.cc) were previously enforced by
// convention and by TSan runs that need the buggy schedule to fire. This
// header makes them compile-time contracts: `rs::Mutex` is a capability in
// the sense of clang's -Wthread-safety analysis, fields carry
// RS_GUARDED_BY(mu), and functions declare what they acquire, require, or
// exclude. Under clang, `-Wthread-safety -Werror` (the CI `analyze` job)
// rejects any access to a guarded field without its lock; under other
// compilers every annotation expands to nothing and the wrappers are plain
// std::shared_mutex RAII.
//
// Usage:
//   rs::Mutex mu;
//   int counter RS_GUARDED_BY(mu);
//   void Bump() { rs::MutexLock lock(&mu); ++counter; }   // checked
//   int Read() const { rs::ReaderMutexLock lock(&mu); return counter; }
//
// The one sanctioned escape hatch is RS_NO_THREAD_SAFETY_ANALYSIS, for
// lock patterns the analysis cannot model (dynamically sized lock sets,
// shard-disjoint state). Every use must carry a comment proving the
// exclusion by hand, and should pair guarded access with mu.AssertHeld()
// so the reader sees the claimed capability at the access site.

#ifndef RS_UTIL_SYNC_H_
#define RS_UTIL_SYNC_H_

#include <shared_mutex>

// ---------------------------------------------------------------------------
// Annotation macros (clang -Wthread-safety; no-op on other compilers).
// Names and semantics follow the clang Thread Safety Analysis docs.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define RS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RS_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// Declares a class to be a capability (lockable) type.
#define RS_CAPABILITY(x) RS_THREAD_ANNOTATION_(capability(x))

// Declares an RAII class whose lifetime acquires/releases a capability.
#define RS_SCOPED_CAPABILITY RS_THREAD_ANNOTATION_(scoped_lockable)

// Data members: may only be read/written while holding the capability
// (shared access suffices for reads).
#define RS_GUARDED_BY(x) RS_THREAD_ANNOTATION_(guarded_by(x))
#define RS_PT_GUARDED_BY(x) RS_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations (deadlock detection).
#define RS_ACQUIRED_BEFORE(...) \
  RS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define RS_ACQUIRED_AFTER(...) \
  RS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function attributes: the caller must hold the capability on entry.
#define RS_REQUIRES(...) \
  RS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RS_REQUIRES_SHARED(...) \
  RS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function attributes: the function acquires/releases the capability.
#define RS_ACQUIRE(...) \
  RS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RS_ACQUIRE_SHARED(...) \
  RS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RS_RELEASE(...) \
  RS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RS_RELEASE_SHARED(...) \
  RS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RS_TRY_ACQUIRE(...) \
  RS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// The function must NOT be called while holding the capability.
#define RS_EXCLUDES(...) RS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Tells the analysis to assume the capability is held (runtime no-op here;
// used at guarded-access sites inside RS_NO_THREAD_SAFETY_ANALYSIS
// patterns so the claimed lock is visible in the source).
#define RS_ASSERT_CAPABILITY(x) RS_THREAD_ANNOTATION_(assert_capability(x))
#define RS_ASSERT_SHARED_CAPABILITY(x) \
  RS_THREAD_ANNOTATION_(assert_shared_capability(x))

#define RS_RETURN_CAPABILITY(x) RS_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use carries
// a comment proving the exclusion by hand (see header comment).
#define RS_NO_THREAD_SAFETY_ANALYSIS \
  RS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rs {

// A capability-annotated mutex supporting exclusive and shared (reader)
// acquisition. Backed by std::shared_mutex; the annotations are the point —
// fields declared RS_GUARDED_BY(mu) are compiler-checked under clang.
class RS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RS_ACQUIRE() { mu_.lock(); }
  void Unlock() RS_RELEASE() { mu_.unlock(); }
  bool TryLock() RS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() RS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RS_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() RS_TRY_ACQUIRE(true) { return mu_.try_lock_shared(); }

  // Annotation-only assertions: std::shared_mutex cannot report ownership,
  // so these check nothing at runtime. They mark guarded accesses inside
  // RS_NO_THREAD_SAFETY_ANALYSIS regions with the capability the
  // surrounding code provides by construction.
  void AssertHeld() const RS_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const RS_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// Exclusive-lock RAII. The scoped-capability annotation lets the analysis
// treat the guard's lifetime as the span during which the mutex is held.
class RS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Shared-lock (reader) RAII: excludes writers, admits other readers.
class RS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex* mu) RS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RS_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace rs

#endif  // RS_UTIL_SYNC_H_
