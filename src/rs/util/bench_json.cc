#include "rs/util/bench_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rs {

namespace {

// JSON string escaping for the characters that can occur in table cells.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// A cell is numeric when strtod consumes it entirely and yields a finite
// value ("inf"/"nan" are not valid JSON numbers).
bool AsNumber(const std::string& cell, double* value) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size() || !std::isfinite(v)) return false;
  *value = v;
  return true;
}

void WriteCell(std::FILE* f, const std::string& cell) {
  double v;
  if (AsNumber(cell, &v)) {
    std::fprintf(f, "%s", cell.c_str());
  } else {
    std::fprintf(f, "\"%s\"", Escape(cell).c_str());
  }
}

}  // namespace

std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<std::string>& columns,
                    const std::vector<std::vector<std::string>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"columns\": [",
               Escape(bench_name).c_str());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                 Escape(columns[i]).c_str());
  }
  std::fprintf(f, "],\n  \"rows\": [\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    std::fprintf(f, "    [");
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i != 0) std::fprintf(f, ", ");
      WriteCell(f, rows[r][i]);
    }
    std::fprintf(f, "]%s\n", r + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace rs
