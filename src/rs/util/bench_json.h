#ifndef RS_UTIL_BENCH_JSON_H_
#define RS_UTIL_BENCH_JSON_H_

#include <string>
#include <vector>

namespace rs {

// Machine-readable output for the benchmark drivers: every driver accepts
// `--json <path>` and, when given, mirrors its printed table into a JSON
// file so benchmark runs accumulate into a perf trajectory instead of
// scrolling away. The convention is one file per driver run, named
// BENCH_<driver>.json by the caller.
//
// Format (one object per file):
//   {
//     "bench": "<driver name>",
//     "columns": ["eps", "static KMV", ...],
//     "rows": [[0.1, "1.2 KiB", ...], ...]
//   }
// Cells that parse fully as finite numbers are emitted as JSON numbers;
// everything else is a JSON string.

// Returns the value following a "--json" argument, or "" when absent.
std::string JsonPathFromArgs(int argc, char** argv);

// Writes the benchmark record to `path`. Returns false (after printing a
// warning to stderr) if the file cannot be written.
bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<std::string>& columns,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace rs

#endif  // RS_UTIL_BENCH_JSON_H_
